package sweep

import (
	"encoding/binary"
	"fmt"
	"io"

	"faultmem/internal/yield"
)

// Payload codecs. Encodings are hand-rolled big-endian binary with
// length-prefixed variable fields (uint8 for names and tokens, uint32 for
// blobs) and are strict in both directions: decoders validate every
// length against the remaining payload and reject leftover bytes, so a
// corrupted-but-checksum-colliding or maliciously shaped payload fails
// loudly at the decode boundary instead of smuggling garbage into a
// campaign.

// decodeError is a recoverable payload-shape failure: the frame was
// well-delimited, its contents were not.
func decodeError(t MsgType, format string, args ...any) error {
	return &FrameError{Reason: fmt.Sprintf("%v payload: %s", t, fmt.Sprintf(format, args...))}
}

// reader is a bounds-checked cursor over one payload.
type reader struct {
	t   MsgType
	b   []byte
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = decodeError(r.t, format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("truncated: need %d bytes, have %d", n, len(r.b))
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// str8 reads a uint8-length-prefixed string (names, tags, tokens).
func (r *reader) str8(what string) string {
	n := int(r.u8())
	if r.err != nil {
		return ""
	}
	if len(r.b) < n {
		r.fail("%s length %d exceeds remaining %d bytes", what, n, len(r.b))
		return ""
	}
	return string(r.take(n))
}

// blob32 reads a uint32-length-prefixed byte blob (params JSON, shard
// payloads). The blob is copied so decoded messages never alias the
// connection's read buffer.
func (r *reader) blob32(what string) []byte {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.fail("%s length %d exceeds remaining %d bytes", what, n, len(r.b))
		return nil
	}
	return append([]byte(nil), r.take(n)...)
}

// done rejects leftover bytes — every decoder must consume its payload
// exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return decodeError(r.t, "%d leftover bytes after message", len(r.b))
	}
	return nil
}

func appendStr8(dst []byte, t MsgType, what, s string) []byte {
	if len(s) > 0xFF {
		panic(fmt.Sprintf("sweep: %v %s too long: %d bytes", t, what, len(s)))
	}
	dst = append(dst, byte(len(s)))
	return append(dst, s...)
}

func appendBlob32(dst []byte, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Hello opens a connection. An empty token requests a fresh session; a
// token from a previous Welcome asks the coordinator to resume that
// session (re-binding its in-flight jobs and accepting its buffered
// results). Auth carries the listener's shared secret when one is
// configured; it is an optional trailing field so a pre-auth peer's
// Hello (no Auth bytes) still decodes, and an auth-free deployment's
// wire bytes are unchanged.
type Hello struct {
	Token string
	Auth  string
}

func (m *Hello) encode() []byte {
	b := appendStr8(nil, MsgHello, "token", m.Token)
	if m.Auth != "" {
		b = appendStr8(b, MsgHello, "auth", m.Auth)
	}
	return b
}

func decodeHello(p []byte) (*Hello, error) {
	r := &reader{t: MsgHello, b: p}
	m := &Hello{Token: r.str8("token")}
	if r.err == nil && len(r.b) > 0 {
		m.Auth = r.str8("auth")
	}
	return m, r.done()
}

// Welcome acknowledges a Hello and carries the session token the worker
// presents on reconnect.
type Welcome struct{ Token string }

func (m *Welcome) encode() []byte { return appendStr8(nil, MsgWelcome, "token", m.Token) }

func decodeWelcome(p []byte) (*Welcome, error) {
	r := &reader{t: MsgWelcome, b: p}
	m := &Welcome{Token: r.str8("token")}
	if r.err == nil && m.Token == "" {
		r.fail("empty session token")
	}
	return m, r.done()
}

// Job flag bits.
const (
	jobFlagSeed  = 1 << 0 // Seed field is meaningful
	jobFlagQuick = 1 << 1 // run the experiment's quick budget
)

// Job assigns one shard of a campaign to a worker. Experiment and the
// runner knobs (Seed, Quick, Workers, Accum, Bins, Params) let the worker
// replay the exact campaign; Tag names the engine run within it and
// Shard/Shards pin the one shard to compute. Shards carries the
// coordinator's resolved count so a worker whose own plan would differ
// (machine-dependent defaults) refuses the job instead of returning a
// shard of a different partition.
type Job struct {
	ID         uint64
	Experiment string
	Tag        string
	Shard      int
	Shards     int
	HasSeed    bool
	Seed       int64
	Quick      bool
	Workers    int
	Accum      yield.AccumMode
	Bins       int
	Params     []byte // JSON override, empty = experiment defaults
}

func (m *Job) encode() []byte {
	var flags byte
	if m.HasSeed {
		flags |= jobFlagSeed
	}
	if m.Quick {
		flags |= jobFlagQuick
	}
	b := binary.BigEndian.AppendUint64(nil, m.ID)
	b = appendStr8(b, MsgJob, "experiment", m.Experiment)
	b = appendStr8(b, MsgJob, "tag", m.Tag)
	b = binary.BigEndian.AppendUint32(b, uint32(m.Shard))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Shards))
	b = append(b, flags)
	b = binary.BigEndian.AppendUint64(b, uint64(m.Seed))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Workers))
	b = append(b, byte(m.Accum))
	b = binary.BigEndian.AppendUint32(b, uint32(m.Bins))
	return appendBlob32(b, m.Params)
}

func decodeJob(p []byte) (*Job, error) {
	r := &reader{t: MsgJob, b: p}
	m := &Job{}
	m.ID = r.u64()
	m.Experiment = r.str8("experiment name")
	m.Tag = r.str8("tag")
	m.Shard = int(r.u32())
	m.Shards = int(r.u32())
	flags := r.u8()
	m.HasSeed = flags&jobFlagSeed != 0
	m.Quick = flags&jobFlagQuick != 0
	m.Seed = int64(r.u64())
	m.Workers = int(r.u32())
	m.Accum = yield.AccumMode(r.u8())
	m.Bins = int(r.u32())
	m.Params = r.blob32("params")
	if r.err == nil {
		switch {
		case m.Experiment == "":
			r.fail("empty experiment name")
		case m.Shards <= 0:
			r.fail("non-positive shard count %d", m.Shards)
		case m.Shard < 0 || m.Shard >= m.Shards:
			r.fail("shard %d out of range [0,%d)", m.Shard, m.Shards)
		}
	}
	return m, r.done()
}

// Result delivers one computed shard: the gob encoding of the shard's
// value, tagged with the job it answers. Shard rides along redundantly so
// the coordinator can cross-check the binding before merging.
type Result struct {
	ID    uint64
	Shard int
	Data  []byte
}

func (m *Result) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.ID)
	b = binary.BigEndian.AppendUint32(b, uint32(m.Shard))
	return appendBlob32(b, m.Data)
}

func decodeResult(p []byte) (*Result, error) {
	r := &reader{t: MsgResult, b: p}
	m := &Result{}
	m.ID = r.u64()
	m.Shard = int(r.u32())
	m.Data = r.blob32("shard data")
	return m, r.done()
}

// JobError reports that a worker could not compute an assigned shard.
// The coordinator falls back to computing that shard locally.
type JobError struct {
	ID  uint64
	Msg string
}

func (m *JobError) encode() []byte {
	b := binary.BigEndian.AppendUint64(nil, m.ID)
	return appendBlob32(b, []byte(m.Msg))
}

func decodeJobError(p []byte) (*JobError, error) {
	r := &reader{t: MsgJobError, b: p}
	m := &JobError{}
	m.ID = r.u64()
	m.Msg = string(r.blob32("message"))
	return m, r.done()
}

// maxIDList bounds the job-ID lists in heartbeat and cancel messages —
// far above any real in-flight count, small enough that a corrupt length
// cannot force a giant allocation.
const maxIDList = 1 << 16

func appendIDList(dst []byte, t MsgType, ids []uint64) []byte {
	if len(ids) > maxIDList {
		panic(fmt.Sprintf("sweep: %v id list too long: %d", t, len(ids)))
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = binary.BigEndian.AppendUint64(dst, id)
	}
	return dst
}

func (r *reader) idList() []uint64 {
	n := int(r.u32())
	if r.err != nil {
		return nil
	}
	if n > maxIDList {
		r.fail("id list length %d exceeds limit %d", n, maxIDList)
		return nil
	}
	if len(r.b) < 8*n {
		r.fail("id list length %d exceeds remaining %d bytes", n, len(r.b))
		return nil
	}
	ids := make([]uint64, n)
	for i := range ids {
		ids[i] = r.u64()
	}
	return ids
}

// Heartbeat refreshes the worker's session and the leases of the listed
// in-flight jobs. The coordinator answers with an empty Heartbeat (a
// pong), so a silent-but-alive connection is distinguishable from a dead
// one in both directions.
type Heartbeat struct{ InFlight []uint64 }

func (m *Heartbeat) encode() []byte { return appendIDList(nil, MsgHeartbeat, m.InFlight) }

func decodeHeartbeat(p []byte) (*Heartbeat, error) {
	r := &reader{t: MsgHeartbeat, b: p}
	m := &Heartbeat{InFlight: r.idList()}
	return m, r.done()
}

// Cancel tells a worker to abandon the listed jobs — every in-flight job
// when the list is empty. Sent when a campaign's context dies or a lease
// expired and the shard was reassigned.
type Cancel struct{ IDs []uint64 }

func (m *Cancel) encode() []byte { return appendIDList(nil, MsgCancel, m.IDs) }

func decodeCancel(p []byte) (*Cancel, error) {
	r := &reader{t: MsgCancel, b: p}
	m := &Cancel{IDs: r.idList()}
	return m, r.done()
}

// Done tells a worker the coordinator is shutting down for good: exit
// cleanly instead of reconnecting.
type Done struct{}

func (m *Done) encode() []byte { return nil }

func decodeDone(p []byte) (*Done, error) {
	r := &reader{t: MsgDone, b: p}
	return &Done{}, r.done()
}

// EncodeMessage frames one protocol message.
func EncodeMessage(m Message) []byte {
	return AppendFrame(nil, m.msgType(), m.payload())
}

// WriteMessage frames and writes one protocol message — the sending
// surface for packages layered on top of the wire protocol (the serve
// server and its client live outside this package and cannot reach the
// unexported per-message encoders).
func WriteMessage(w io.Writer, m Message) error {
	return WriteFrame(w, m.msgType(), m.payload())
}

// Message is one decoded protocol message.
type Message interface {
	msgType() MsgType
	payload() []byte
}

func (m *Hello) msgType() MsgType     { return MsgHello }
func (m *Hello) payload() []byte      { return m.encode() }
func (m *Welcome) msgType() MsgType   { return MsgWelcome }
func (m *Welcome) payload() []byte    { return m.encode() }
func (m *Job) msgType() MsgType       { return MsgJob }
func (m *Job) payload() []byte        { return m.encode() }
func (m *Result) msgType() MsgType    { return MsgResult }
func (m *Result) payload() []byte     { return m.encode() }
func (m *JobError) msgType() MsgType  { return MsgJobError }
func (m *JobError) payload() []byte   { return m.encode() }
func (m *Heartbeat) msgType() MsgType { return MsgHeartbeat }
func (m *Heartbeat) payload() []byte  { return m.encode() }
func (m *Cancel) msgType() MsgType    { return MsgCancel }
func (m *Cancel) payload() []byte     { return m.encode() }
func (m *Done) msgType() MsgType      { return MsgDone }
func (m *Done) payload() []byte       { return m.encode() }

// DecodeMessage decodes a validated frame's payload into its message.
// Failures are recoverable *FrameErrors: the frame boundary was sound,
// its contents were not, and the connection survives.
func DecodeMessage(t MsgType, payload []byte) (Message, error) {
	switch t {
	case MsgHello:
		return decodeHello(payload)
	case MsgWelcome:
		return decodeWelcome(payload)
	case MsgJob:
		return decodeJob(payload)
	case MsgResult:
		return decodeResult(payload)
	case MsgJobError:
		return decodeJobError(payload)
	case MsgHeartbeat:
		return decodeHeartbeat(payload)
	case MsgCancel:
		return decodeCancel(payload)
	case MsgDone:
		return decodeDone(payload)
	case MsgClientHello:
		return decodeClientHello(payload)
	case MsgClientWelcome:
		return decodeClientWelcome(payload)
	case MsgSubmit:
		return decodeSubmit(payload)
	case MsgSubmitReply:
		return decodeSubmitReply(payload)
	case MsgJobControl:
		return decodeJobControl(payload)
	case MsgJobInfo:
		return decodeJobInfo(payload)
	case MsgSnapshot:
		return decodeSnapshot(payload)
	case MsgFinal:
		return decodeFinal(payload)
	default:
		return nil, decodeError(t, "no decoder for frame type")
	}
}
