package sweep

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"faultmem/internal/exp"
	"faultmem/internal/mc"
	"faultmem/internal/yield"
)

// Config tunes the coordinator's fault-tolerance clocks. The zero value
// selects production defaults; tests shrink everything to milliseconds.
type Config struct {
	// Lease is how long a dispatched shard may go without a heartbeat
	// from its worker before it is reassigned (default 3s).
	Lease time.Duration
	// SessionTTL is how long a disconnected session is kept alive for
	// resume — its in-flight shards stay leased and its buffered results
	// stay acceptable — before it is pruned (default 10s).
	SessionTTL time.Duration
	// MaxRemoteAttempts bounds how many times one shard is dispatched
	// remotely before the coordinator computes it locally (default 3).
	MaxRemoteAttempts int
	// LocalWorkers caps the parallelism of locally computed fallback
	// shards (default GOMAXPROCS).
	LocalWorkers int
	// AuthToken, when non-empty, is the shared secret every worker must
	// present in its Hello (constant-time compared); connections that
	// fail the check are dropped before a session exists.
	AuthToken string
	// Logf, when non-nil, receives one line per robustness event
	// (reassignments, rejected frames, session churn).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 3 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Second
	}
	if c.MaxRemoteAttempts <= 0 {
		c.MaxRemoteAttempts = 3
	}
	c.LocalWorkers = mc.Workers(c.LocalWorkers)
	return c
}

// Stats counts the coordinator's robustness events. All fields are
// cumulative totals since the coordinator started.
type Stats struct {
	// RemoteShards / LocalShards split completed shards by where they
	// were computed. LocalShards > 0 on a distributed campaign means the
	// coordinator degraded gracefully (worker errors or pool drain).
	RemoteShards, LocalShards uint64
	// Reassigned counts shard leases that expired (worker death or
	// partition) and went back on the queue.
	Reassigned uint64
	// JobErrors counts shards a worker explicitly failed.
	JobErrors uint64
	// FramesRejected counts corrupt-but-delimited frames dropped without
	// killing their connection.
	FramesRejected uint64
	// DuplicateResults counts late results for already-completed shards —
	// the double-merge attempts the job-ID dedup absorbed.
	DuplicateResults uint64
	// SessionsOpened / SessionsResumed / SessionsPruned trace worker
	// churn: fresh handshakes, token-resumed reconnects, and sessions
	// that out-stayed SessionTTL.
	SessionsOpened, SessionsResumed, SessionsPruned uint64
}

type statsCounters struct {
	remoteShards, localShards, reassigned, jobErrors atomic.Uint64
	framesRejected, duplicateResults                 atomic.Uint64
	sessionsOpened, sessionsResumed, sessionsPruned  atomic.Uint64
}

func (s *statsCounters) snapshot() Stats {
	return Stats{
		RemoteShards:     s.remoteShards.Load(),
		LocalShards:      s.localShards.Load(),
		Reassigned:       s.reassigned.Load(),
		JobErrors:        s.jobErrors.Load(),
		FramesRejected:   s.framesRejected.Load(),
		DuplicateResults: s.duplicateResults.Load(),
		SessionsOpened:   s.sessionsOpened.Load(),
		SessionsResumed:  s.sessionsResumed.Load(),
		SessionsPruned:   s.sessionsPruned.Load(),
	}
}

// campaign is the replayable description of one distributed run: every
// runner knob a worker needs to reproduce the coordinator's campaign
// exactly. It is pinned at Run time and immutable afterwards.
type campaign struct {
	experiment string
	hasSeed    bool
	seed       int64
	quick      bool
	workers    int // resolved (never 0), so machine-dependent plans match
	accum      yield.AccumMode
	bins       int
	params     []byte
}

// job states.
const (
	jobQueued = iota // waiting for a worker slot
	jobLeased        // dispatched, lease ticking
	jobLocal         // being computed by the coordinator itself
	jobDone          // finalized; any further result is a duplicate
)

type outcome struct {
	v   any
	err error
}

// job is one shard in flight through the coordinator.
type job struct {
	id         uint64
	camp       *campaign
	sj         mc.ShardJob
	state      int
	attempts   int       // remote dispatch count
	leaseUntil time.Time // meaningful in jobLeased
	owner      *session  // meaningful in jobLeased
	result     chan outcome
}

// session is one worker's identity across reconnects. conn is nil while
// the worker is disconnected; the session survives until SessionTTL so a
// reconnecting worker can resume and deliver results computed offline.
type session struct {
	token    string
	conn     net.Conn // guarded by Coordinator.mu
	writeMu  sync.Mutex
	lastSeen time.Time
	leased   map[uint64]*job
}

// Coordinator owns a distributed sweep: it accepts worker connections,
// fans the shards of campaigns started via Run/RunAll out to them, and
// survives arbitrary worker churn — reassigning expired leases,
// deduplicating late results by job ID, and finishing locally when the
// pool drains — while keeping results bit-identical to a single-host run.
type Coordinator struct {
	cfg   Config
	ln    net.Listener
	stats statsCounters

	mu          sync.Mutex
	sessions    map[string]*session
	jobs        map[uint64]*job // in-flight (not yet jobDone)
	queue       []*job
	nextID      uint64
	connChanged chan struct{} // replaced on every connect/disconnect
	// localTags are engine runs a worker has failed (unencodable shard
	// type, plan mismatch — deterministic, machine- or code-level
	// failures). Their remaining shards skip the wire and run locally, so
	// one doomed stage does not cost a full round trip per shard.
	localTags map[string]struct{}

	localSem chan struct{}
	kick     chan struct{}
	done     chan struct{}
	closed   sync.Once
	wg       sync.WaitGroup
}

// NewCoordinator starts a coordinator serving workers on ln. Close shuts
// it down.
func NewCoordinator(ln net.Listener, cfg Config) *Coordinator {
	c := NewDetachedCoordinator(cfg)
	c.ln = ln
	c.wg.Add(1)
	go c.acceptLoop()
	return c
}

// NewDetachedCoordinator starts a coordinator without its own listener:
// the caller accepts connections itself, performs the Hello read (and
// whatever multiplexing it needs — the serve mode shares one port
// between workers and clients), and hands worker connections over via
// AdmitWorker. Close shuts it down.
func NewDetachedCoordinator(cfg Config) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:         cfg,
		sessions:    map[string]*session{},
		jobs:        map[uint64]*job{},
		localTags:   map[string]struct{}{},
		connChanged: make(chan struct{}),
		localSem:    make(chan struct{}, cfg.LocalWorkers),
		kick:        make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	c.wg.Add(2)
	go c.scheduler()
	go c.janitor()
	return c
}

// Addr is the listener's address (useful with a ":0" listener in tests).
// It is nil for a detached coordinator.
func (c *Coordinator) Addr() net.Addr {
	if c.ln == nil {
		return nil
	}
	return c.ln.Addr()
}

// Stats returns a snapshot of the robustness counters.
func (c *Coordinator) Stats() Stats { return c.stats.snapshot() }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Close tells every connected worker the sweep is over (Done frame),
// drops all connections, and stops the service. Campaigns should have
// finished first; shards still in flight will never complete.
func (c *Coordinator) Close() error {
	c.closed.Do(func() {
		close(c.done)
		if c.ln != nil {
			c.ln.Close()
		}
		c.mu.Lock()
		type farewell struct {
			s    *session
			conn net.Conn
		}
		conns := make([]farewell, 0, len(c.sessions))
		for _, s := range c.sessions {
			if s.conn != nil {
				conns = append(conns, farewell{s, s.conn})
			}
		}
		c.mu.Unlock()
		for _, f := range conns {
			f.s.writeMu.Lock()
			WriteFrame(f.conn, MsgDone, (&Done{}).encode())
			f.conn.Close()
			f.s.writeMu.Unlock()
		}
	})
	c.wg.Wait()
	return nil
}

// ConnectedWorkers counts the worker sessions with a live connection
// right now — the serve scheduler's capacity signal.
func (c *Coordinator) ConnectedWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	connected := 0
	for _, s := range c.sessions {
		if s.conn != nil {
			connected++
		}
	}
	return connected
}

// AwaitWorkers blocks until at least n workers are connected (or ctx
// dies). Zero returns immediately.
func (c *Coordinator) AwaitWorkers(ctx context.Context, n int) error {
	for {
		c.mu.Lock()
		connected := 0
		for _, s := range c.sessions {
			if s.conn != nil {
				connected++
			}
		}
		ch := c.connChanged
		c.mu.Unlock()
		if connected >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("sweep: waiting for %d workers (have %d): %w", n, connected, ctx.Err())
		case <-c.done:
			return errors.New("sweep: coordinator closed while awaiting workers")
		case <-ch:
		}
	}
}

// notifyConnChange wakes AwaitWorkers waiters. Callers hold c.mu.
func (c *Coordinator) notifyConnChange() {
	close(c.connChanged)
	c.connChanged = make(chan struct{})
}

// Run executes one registered experiment with its engine shards fanned
// out to the connected workers, falling back to local compute per shard
// on worker failure. The result is bit-identical to exp.Run with the
// same runner on a single host.
func (c *Coordinator) Run(ctx context.Context, name string, r *exp.Runner) (*exp.Result, error) {
	rc, err := c.DistributedRunner(r)
	if err != nil {
		return nil, err
	}
	return exp.Run(ctx, name, rc)
}

// RunAll executes every registered experiment in presentation order with
// shards fanned out to workers, streaming results to emit. Failure
// aggregation follows exp.RunAll.
func (c *Coordinator) RunAll(ctx context.Context, r *exp.Runner, emit func(*exp.Result) error) error {
	rc, err := c.DistributedRunner(r)
	if err != nil {
		return err
	}
	return exp.RunAll(ctx, rc, emit)
}

// DistributedRunner clones r with the shard executor installed — the
// hook the serve scheduler wraps with its fair-share gate. The campaign
// the executor ships is pinned per engine run from the resolved runner
// knobs, so a worker's replay and the coordinator's plan agree on every
// machine-dependent default.
func (c *Coordinator) DistributedRunner(r *exp.Runner) (*exp.Runner, error) {
	rc := &exp.Runner{}
	if r != nil {
		*rc = *r
	}
	// The wire carries the coordinator's resolved worker count: stage
	// plans that depend on parallelism (Fig. 7 spans) must come out the
	// same on the worker's machine. The local runner keeps the caller's
	// raw value — it resolves to the same plan here, and experiments echo
	// it into their reported params, which must match a single-host run.
	camp := &campaign{
		quick:   rc.Quick,
		accum:   rc.Accum,
		bins:    rc.Bins,
		workers: mc.Workers(rc.Workers),
	}
	if rc.Seed != nil {
		camp.hasSeed, camp.seed = true, *rc.Seed
	}
	switch p := rc.Params.(type) {
	case nil:
	case json.RawMessage:
		camp.params = append([]byte(nil), p...)
	case []byte:
		camp.params = append([]byte(nil), p...)
	default:
		// A concrete params struct can cross the wire as its JSON
		// encoding: the worker decodes it strictly over the defaults,
		// and float64 JSON round-trips are exact.
		b, err := json.Marshal(p)
		if err != nil {
			return nil, fmt.Errorf("sweep: params override is not wireable: %w", err)
		}
		camp.params = b
	}
	rc.Exec = func(sj mc.ShardJob) (any, error) {
		// The campaign's experiment name is the tag's first component
		// ("experiment" or "experiment/stage") — the engine run names
		// itself, so nested helper runs inside other experiments replay
		// under the right registry entry.
		camp := *camp
		camp.experiment = sj.Tag
		if i := strings.IndexByte(sj.Tag, '/'); i >= 0 {
			camp.experiment = sj.Tag[:i]
		}
		return c.execute(&camp, sj)
	}
	return rc, nil
}

// execute is the mc.ExecFunc of a distributed campaign: enqueue the
// shard, wait for a worker (or the local fallback) to deliver it.
func (c *Coordinator) execute(camp *campaign, sj mc.ShardJob) (any, error) {
	if camp.experiment == "" {
		// An untagged engine run cannot be named on the wire; compute it
		// here rather than fail the campaign.
		return sj.Run(), nil
	}
	if _, ok := exp.Lookup(camp.experiment); !ok {
		// Helper engine runs inside an experiment (sub-sweeps with their
		// own tags) are not registry entries; they stay local.
		return sj.Run(), nil
	}
	j := &job{camp: camp, sj: sj, result: make(chan outcome, 1)}

	c.mu.Lock()
	c.nextID++
	j.id = c.nextID
	c.jobs[j.id] = j
	if _, poisoned := c.localTags[sj.Tag]; poisoned {
		// A worker already proved this engine run cannot travel; don't
		// burn a replay round trip per shard finding that out again.
		j.state = jobLocal
		c.mu.Unlock()
		c.runLocal(j)
	} else if c.liveSessionsLocked() == 0 {
		// No one to send it to and no one likely to return: degrade to
		// local compute immediately.
		j.state = jobLocal
		c.mu.Unlock()
		c.runLocal(j)
	} else {
		j.state = jobQueued
		c.queue = append(c.queue, j)
		c.mu.Unlock()
		c.kickScheduler()
	}

	select {
	case out := <-j.result:
		return out.v, out.err
	case <-sj.Ctx.Done():
		c.abandon(j)
		return nil, sj.Ctx.Err()
	}
}

// liveSessionsLocked counts sessions that are connected or still within
// their resume window — the "someone may yet deliver results" set.
func (c *Coordinator) liveSessionsLocked() int {
	now := time.Now()
	n := 0
	for _, s := range c.sessions {
		if s.conn != nil || now.Sub(s.lastSeen) <= c.cfg.SessionTTL {
			n++
		}
	}
	return n
}

func (c *Coordinator) kickScheduler() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// finalize completes a job exactly once. Reports whether this call won —
// a false return means a duplicate (late result, racing local fallback)
// that must be dropped.
func (c *Coordinator) finalize(j *job, v any, err error) bool {
	c.mu.Lock()
	if j.state == jobDone {
		c.mu.Unlock()
		return false
	}
	j.state = jobDone
	delete(c.jobs, j.id)
	if j.owner != nil {
		delete(j.owner.leased, j.id)
		j.owner = nil
	}
	c.mu.Unlock()
	j.result <- outcome{v: v, err: err}
	return true
}

// abandon drops a job whose campaign died: late results for it become
// duplicates.
func (c *Coordinator) abandon(j *job) {
	c.mu.Lock()
	if j.state == jobDone {
		c.mu.Unlock()
		return
	}
	j.state = jobDone
	delete(c.jobs, j.id)
	var owner *session
	if j.owner != nil {
		delete(j.owner.leased, j.id)
		owner, j.owner = j.owner, nil
	}
	c.mu.Unlock()
	if owner != nil {
		go c.send(owner, MsgCancel, (&Cancel{IDs: []uint64{j.id}}).encode())
	}
}

// runLocal computes one shard on the coordinator, gated by the local
// semaphore so a drained pool degrades to bounded local parallelism
// rather than a thundering herd.
func (c *Coordinator) runLocal(j *job) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		select {
		case c.localSem <- struct{}{}:
			defer func() { <-c.localSem }()
		case <-j.sj.Ctx.Done():
			c.finalize(j, nil, j.sj.Ctx.Err())
			return
		}
		if err := j.sj.Ctx.Err(); err != nil {
			c.finalize(j, nil, err)
			return
		}
		v := j.sj.Run()
		if c.finalize(j, v, nil) {
			c.stats.localShards.Add(1)
		}
	}()
}

// requeueLocked routes a job that lost its lease: back on the queue while
// remote attempts remain, to local compute after. Callers hold c.mu and
// must kick the scheduler after unlocking.
func (c *Coordinator) requeueLocked(j *job) {
	if j.owner != nil {
		delete(j.owner.leased, j.id)
		j.owner = nil
	}
	if j.attempts >= c.cfg.MaxRemoteAttempts {
		j.state = jobLocal
		c.runLocal(j)
		return
	}
	j.state = jobQueued
	c.queue = append(c.queue, j)
}

// scheduler assigns queued jobs to connected workers, least-loaded first.
func (c *Coordinator) scheduler() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-c.kick:
		}
		for c.assignOne() {
		}
	}
}

// assignOne dispatches one queued job; reports whether it did (or
// discarded a stale queue entry), so the scheduler drains in a loop.
func (c *Coordinator) assignOne() bool {
	c.mu.Lock()
	var j *job
	for len(c.queue) > 0 {
		head := c.queue[0]
		c.queue = c.queue[1:]
		if head.state == jobQueued {
			j = head
			break
		}
		// Stale entry (finalized or gone local while queued): drop it.
	}
	if j == nil {
		c.mu.Unlock()
		return false
	}
	var best *session
	for _, s := range c.sessions {
		if s.conn == nil {
			continue
		}
		if best == nil || len(s.leased) < len(best.leased) {
			best = s
		}
	}
	if best == nil {
		// No connected worker right now. Put it back; the janitor either
		// finds a reconnected worker later or degrades it to local when
		// the pool is truly gone.
		c.queue = append([]*job{j}, c.queue...)
		c.mu.Unlock()
		return false
	}
	j.state = jobLeased
	j.owner = best
	j.attempts++
	j.leaseUntil = time.Now().Add(c.cfg.Lease)
	best.leased[j.id] = j
	msg := &Job{
		ID:         j.id,
		Experiment: j.camp.experiment,
		Tag:        j.sj.Tag,
		Shard:      j.sj.Shard,
		Shards:     j.sj.Shards,
		HasSeed:    j.camp.hasSeed,
		Seed:       j.camp.seed,
		Quick:      j.camp.quick,
		Workers:    j.camp.workers,
		Accum:      j.camp.accum,
		Bins:       j.camp.bins,
		Params:     j.camp.params,
	}
	c.mu.Unlock()
	if err := c.send(best, MsgJob, msg.encode()); err != nil {
		// The write failed: the connection is dead. The lease keeps the
		// job recoverable; detach so the janitor sees the disconnect.
		c.detach(best)
	}
	return true
}

// send writes one frame on a session's current connection.
func (c *Coordinator) send(s *session, t MsgType, payload []byte) error {
	return c.sendFlags(s, t, 0, payload)
}

// sendFlags is send with frame flags (the Welcome gzip negotiation
// echo; job and control frames stay plain — result blobs, the payloads
// worth compressing, flow the other way).
func (c *Coordinator) sendFlags(s *session, t MsgType, flags byte, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	c.mu.Lock()
	conn := s.conn
	c.mu.Unlock()
	if conn == nil {
		return errors.New("sweep: session disconnected")
	}
	return WriteFrameFlags(conn, t, flags, payload)
}

// detach marks a session disconnected (its conn closed), leaving it
// resumable until SessionTTL.
func (c *Coordinator) detach(s *session) {
	c.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
		s.lastSeen = time.Now()
		c.notifyConnChange()
	}
	c.mu.Unlock()
}

// janitor is the churn clock: it expires shard leases, prunes sessions
// past their resume window, degrades the queue to local compute when the
// pool is gone, and re-kicks the scheduler.
func (c *Coordinator) janitor() {
	defer c.wg.Done()
	tick := c.cfg.Lease / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-t.C:
		}
		now := time.Now()
		c.mu.Lock()
		// Expired leases: the worker died, partitioned, or is too slow —
		// reassign the shard. If its result still arrives later, the
		// job-ID dedup drops whichever copy comes second.
		for _, j := range c.jobs {
			if j.state == jobLeased && now.After(j.leaseUntil) {
				c.stats.reassigned.Add(1)
				c.logf("sweep: [job %d] lease expired for shard %d of %s (attempt %d), reassigning",
					j.id, j.sj.Shard, j.sj.Tag, j.attempts)
				c.requeueLocked(j)
			}
		}
		// Sessions past the resume window.
		for token, s := range c.sessions {
			if s.conn == nil && now.Sub(s.lastSeen) > c.cfg.SessionTTL {
				delete(c.sessions, token)
				c.stats.sessionsPruned.Add(1)
				c.logf("sweep: pruned session %s after %v offline", token, now.Sub(s.lastSeen))
				for _, j := range s.leased {
					c.requeueLocked(j)
				}
			}
		}
		// Pool drained: no worker will ever take the queue — finish the
		// campaign locally.
		if len(c.queue) > 0 && c.liveSessionsLocked() == 0 {
			queued := c.queue
			c.queue = nil
			n := 0
			for _, j := range queued {
				if j.state == jobQueued {
					j.state = jobLocal
					c.runLocal(j)
					n++
				}
			}
			if n > 0 {
				c.logf("sweep: worker pool drained, computing %d queued shards locally", n)
			}
		}
		c.mu.Unlock()
		c.kickScheduler()
	}
}

// acceptLoop admits worker connections.
func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.handleConn(conn)
		}()
	}
}

func randToken() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("sweep: crypto/rand failed: %v", err))
	}
	return hex.EncodeToString(b[:])
}

// handleConn runs one worker connection: handshake, then the inbound
// message loop. Corrupt-but-delimited frames are counted and skipped;
// desynchronized streams drop only this connection — the session (and its
// leased shards) survives for the worker's reconnect.
func (c *Coordinator) handleConn(conn net.Conn) {
	defer conn.Close()
	t, flags, payload, err := ReadFrameFlags(conn)
	if err != nil || t != MsgHello {
		return
	}
	m, err := DecodeMessage(t, payload)
	if err != nil {
		return
	}
	c.AdmitWorker(conn, m.(*Hello), flags)
}

// AdmitWorker runs one worker connection whose Hello frame has already
// been read — the entry point for callers that accept and demultiplex
// connections themselves (the serve mode's shared listener). It blocks
// until the connection dies, closes conn on return, and leaves the
// session resumable until SessionTTL.
func (c *Coordinator) AdmitWorker(conn net.Conn, hello *Hello, flags byte) {
	defer conn.Close()
	if !AuthEqual(c.cfg.AuthToken, hello.Auth) {
		c.logf("sweep: worker from %v failed authentication, dropped", conn.RemoteAddr())
		return
	}
	// FlagGzipOK on Hello advertises a flags-aware worker; echoing it on
	// Welcome — and only then — turns compression on for this
	// connection. A pre-flags worker never sees a flagged frame.
	gzipOK := flags&FlagGzipOK != 0

	c.mu.Lock()
	s := c.sessions[hello.Token]
	if s != nil {
		// Resume: adopt the new connection, dropping any stale one.
		if s.conn != nil {
			s.conn.Close()
		}
		s.conn = conn
		s.lastSeen = time.Now()
		c.stats.sessionsResumed.Add(1)
		c.logf("sweep: session %s resumed from %v", s.token, conn.RemoteAddr())
	} else {
		s = &session{
			token:    randToken(),
			conn:     conn,
			lastSeen: time.Now(),
			leased:   map[uint64]*job{},
		}
		c.sessions[s.token] = s
		c.stats.sessionsOpened.Add(1)
		c.logf("sweep: session %s opened from %v", s.token, conn.RemoteAddr())
	}
	token := s.token
	c.notifyConnChange()
	c.mu.Unlock()

	welcomeFlags := byte(0)
	if gzipOK {
		welcomeFlags = FlagGzipOK
	}
	if err := c.sendFlags(s, MsgWelcome, welcomeFlags, (&Welcome{Token: token}).encode()); err != nil {
		c.detach(s)
		return
	}
	c.kickScheduler()

	for {
		t, payload, err := ReadFrame(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				c.logf("sweep: session %s connection dropped: %v", token, err)
			}
			break
		}
		msg, err := DecodeMessage(t, payload)
		if err != nil {
			c.stats.framesRejected.Add(1)
			c.logf("sweep: session %s sent a corrupt frame, rejected: %v", token, err)
			continue
		}
		c.mu.Lock()
		s.lastSeen = time.Now()
		c.mu.Unlock()
		switch m := msg.(type) {
		case *Result:
			c.handleResult(s, m)
		case *JobError:
			c.handleJobError(s, m)
		case *Heartbeat:
			c.handleHeartbeat(s, m)
		default:
			// A worker has no business sending Job/Welcome/etc; treat it
			// like a corrupt frame.
			c.stats.framesRejected.Add(1)
		}
	}
	// The conn died (or the worker closed it). Keep the session; only
	// clear this connection if it is still the session's current one.
	c.mu.Lock()
	if s.conn == conn {
		s.conn = nil
		s.lastSeen = time.Now()
		c.notifyConnChange()
	}
	c.mu.Unlock()
}

// handleResult merges one remotely computed shard. Results are
// deduplicated by job ID: whatever arrives after a shard completed —
// a slow worker's answer to a reassigned shard, a duplicated frame —
// is dropped, so double-merging is structurally impossible.
func (c *Coordinator) handleResult(s *session, m *Result) {
	c.mu.Lock()
	j := c.jobs[m.ID]
	done := j != nil && j.state == jobDone
	c.mu.Unlock()
	if j == nil || done {
		c.stats.duplicateResults.Add(1)
		return
	}
	if m.Shard != j.sj.Shard {
		// The payload disagrees with the job binding — corruption that
		// survived the checksum, or a confused worker. Never merge it.
		c.stats.framesRejected.Add(1)
		c.logf("sweep: result for job %d names shard %d, want %d — rejected", m.ID, m.Shard, j.sj.Shard)
		return
	}
	v, err := j.sj.Decode(m.Data)
	if err != nil {
		// Undecodable payload: recompute rather than fail the campaign.
		c.logf("sweep: [job %d] result for shard %d of %s undecodable (%v), recomputing", j.id, j.sj.Shard, j.sj.Tag, err)
		c.mu.Lock()
		if j.state != jobDone {
			c.requeueLocked(j)
		}
		c.mu.Unlock()
		c.kickScheduler()
		return
	}
	if c.finalize(j, v, nil) {
		c.stats.remoteShards.Add(1)
	} else {
		c.stats.duplicateResults.Add(1)
	}
}

// handleJobError routes a shard the worker could not compute to local
// compute: worker-side failures (unencodable shard type, plan mismatch,
// replay error) are deterministic, so redispatching them remotely would
// fail everywhere. The whole engine run is poisoned along with it —
// every sibling shard of the same tag, queued or in flight, moves to
// local compute and the workers are told to abandon theirs.
func (c *Coordinator) handleJobError(s *session, m *JobError) {
	c.stats.jobErrors.Add(1)
	c.mu.Lock()
	j := c.jobs[m.ID]
	if j == nil || j.state == jobDone {
		c.mu.Unlock()
		return
	}
	tag := j.sj.Tag
	c.logf("sweep: [job %d] worker failed shard %d of %s (%s); computing that run locally", j.id, j.sj.Shard, tag, m.Msg)
	c.localTags[tag] = struct{}{}
	var toLocal []*job
	cancels := map[*session][]uint64{}
	for _, sib := range c.jobs {
		if sib.sj.Tag != tag || (sib.state != jobQueued && sib.state != jobLeased) {
			continue
		}
		if sib.owner != nil {
			cancels[sib.owner] = append(cancels[sib.owner], sib.id)
			delete(sib.owner.leased, sib.id)
			sib.owner = nil
		}
		sib.state = jobLocal
		toLocal = append(toLocal, sib)
	}
	c.mu.Unlock()
	for _, sib := range toLocal {
		c.runLocal(sib)
	}
	for owner, ids := range cancels {
		owner, ids := owner, ids
		go c.send(owner, MsgCancel, (&Cancel{IDs: ids}).encode())
	}
}

// handleHeartbeat refreshes the leases the worker claims in flight and
// pongs, so both sides can distinguish silent-alive from dead.
func (c *Coordinator) handleHeartbeat(s *session, m *Heartbeat) {
	now := time.Now()
	c.mu.Lock()
	for _, id := range m.InFlight {
		if j, ok := s.leased[id]; ok {
			j.leaseUntil = now.Add(c.cfg.Lease)
		}
	}
	c.mu.Unlock()
	c.send(s, MsgHeartbeat, (&Heartbeat{}).encode())
}
