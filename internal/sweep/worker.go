package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"faultmem/internal/exp"
	"faultmem/internal/mc"
)

// WorkerConfig tunes a worker's liveness clocks. The zero value selects
// production defaults; tests shrink everything to milliseconds.
type WorkerConfig struct {
	// Heartbeat is the interval between lease-refreshing heartbeats
	// (default 1s). It must be comfortably below the coordinator's Lease
	// or healthy shards get reassigned mid-compute.
	Heartbeat time.Duration
	// PongTimeout is how long the connection may stay silent (no pong,
	// no job, nothing) before the worker declares it dead and reconnects
	// — the defense against a black-holed-but-open TCP connection
	// (default 4x Heartbeat).
	PongTimeout time.Duration
	// ReconnectMin/ReconnectMax bound the jittered exponential backoff
	// between connection attempts (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// LocalWorkers caps the worker's compute parallelism across all
	// in-flight shards (default GOMAXPROCS).
	LocalWorkers int
	// AuthToken is the shared secret presented in the Hello handshake
	// when the coordinator's listening port requires one.
	AuthToken string
	// Logf, when non-nil, receives one line per connection event.
	Logf func(format string, args ...any)
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = time.Second
	}
	if c.PongTimeout <= 0 {
		c.PongTimeout = 4 * c.Heartbeat
	}
	if c.ReconnectMin <= 0 {
		c.ReconnectMin = 100 * time.Millisecond
	}
	if c.ReconnectMax <= 0 {
		c.ReconnectMax = 5 * time.Second
	}
	if c.ReconnectMax < c.ReconnectMin {
		c.ReconnectMax = c.ReconnectMin
	}
	c.LocalWorkers = mc.Workers(c.LocalWorkers)
	return c
}

// worker is the client side of the sweep protocol: it computes assigned
// shards by replaying their campaign, survives coordinator restarts and
// network churn by reconnecting with backoff and resuming its session,
// and buffers results computed while disconnected for redelivery.
type worker struct {
	cfg WorkerConfig

	mu       sync.Mutex
	token    string // session token; empty until the first Welcome
	conn     net.Conn
	gzip     bool // coordinator echoed FlagGzipOK on this connection
	inflight map[uint64]context.CancelFunc
	pending  []Message // results awaiting a live connection

	// legacyHello strips the FlagGzipOK advertisement from the next
	// handshake. It is set when a flagged handshake dies before Welcome:
	// a pre-flags coordinator reads the flagged Hello as an unknown
	// frame type and hangs up, so the worker retries plain — trading
	// compression away for interop. (A transient network failure at
	// exactly the wrong moment costs the same downgrade; that only
	// forgoes an optimization, never correctness.)
	legacyHello bool

	sendMu      sync.Mutex
	lastInbound atomic.Int64 // unix nanos of the last valid frame
	sem         chan struct{}
	wg          sync.WaitGroup
}

// RunWorker connects to a coordinator at addr and serves shard jobs until
// the coordinator says Done (returns nil) or ctx dies (returns ctx.Err()).
// Connection loss is not an exit condition: the worker reconnects with
// jittered exponential backoff, resumes its session by token, and
// re-delivers any results it computed while disconnected.
func RunWorker(ctx context.Context, addr string, cfg WorkerConfig) error {
	w := &worker{
		cfg:      cfg.withDefaults(),
		inflight: map[uint64]context.CancelFunc{},
		sem:      make(chan struct{}, cfg.withDefaults().LocalWorkers),
	}
	defer w.wg.Wait()
	defer w.cancelJobs(nil)
	backoff := w.cfg.ReconnectMin
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.logf("sweep worker: dial %s: %v (retrying in ~%v)", addr, err, backoff)
			if !sleepCtx(ctx, jitter(backoff)) {
				return ctx.Err()
			}
			backoff *= 2
			if backoff > w.cfg.ReconnectMax {
				backoff = w.cfg.ReconnectMax
			}
			continue
		}
		finished, err := w.serveConn(ctx, conn)
		if finished {
			return err
		}
		// The connection died but the sweep may still be on: retry from
		// the floor (we just had a working link; the jitter still spreads
		// a thundering herd of restarted workers).
		backoff = w.cfg.ReconnectMin
		if !sleepCtx(ctx, jitter(backoff)) {
			return ctx.Err()
		}
	}
}

// jitter spreads a backoff delay over [d/2, d] so a fleet of workers
// restarted together does not reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	half := int64(d / 2)
	if half <= 0 {
		return d
	}
	return time.Duration(half + rand.Int63n(half+1))
}

// sleepCtx sleeps d; reports false if ctx died first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (w *worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// serveConn runs one connection: handshake (new session or token
// resume), pending-result flush, then the job loop. It reports finished
// = true only on a clean Done or a dead ctx; everything else means
// "reconnect and carry on".
func (w *worker) serveConn(ctx context.Context, conn net.Conn) (finished bool, err error) {
	defer conn.Close()

	w.mu.Lock()
	token := w.token
	helloFlags := byte(FlagGzipOK)
	if w.legacyHello {
		helloFlags = 0
	}
	w.mu.Unlock()
	if err := WriteFrameFlags(conn, MsgHello, helloFlags, (&Hello{Token: token, Auth: w.cfg.AuthToken}).encode()); err != nil {
		return false, err
	}
	t, flags, payload, err := ReadFrameFlags(conn)
	if err != nil || t != MsgWelcome {
		if helloFlags != 0 {
			// A coordinator that predates frame flags reads a flagged
			// Hello as an unknown frame type and drops the connection
			// before any Welcome. Retry plain from now on.
			w.mu.Lock()
			w.legacyHello = true
			w.mu.Unlock()
			w.logf("sweep worker: flagged handshake failed, retrying without frame flags")
		}
		if err != nil {
			return false, err
		}
		return false, fmt.Errorf("sweep worker: handshake got %v, want welcome", t)
	}
	m, err := DecodeMessage(t, payload)
	if err != nil {
		return false, err
	}
	welcome := m.(*Welcome)

	w.mu.Lock()
	resumed := w.token != "" && w.token == welcome.Token
	w.token = welcome.Token
	w.conn = conn
	w.gzip = flags&FlagGzipOK != 0
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		if w.conn == conn {
			w.conn = nil
			w.gzip = false
		}
		w.mu.Unlock()
	}()
	w.lastInbound.Store(time.Now().UnixNano())
	if resumed {
		w.logf("sweep worker: session %s resumed", welcome.Token)
	} else {
		w.logf("sweep worker: session %s opened", welcome.Token)
	}

	// Results computed while disconnected go first — the slow worker's
	// late answer is the coordinator's problem to dedup, not ours to drop.
	w.flushPending()

	hbStop := make(chan struct{})
	defer close(hbStop)
	go w.heartbeatLoop(conn, hbStop)
	go func() {
		// Unblock the read loop if ctx dies mid-read.
		select {
		case <-ctx.Done():
			conn.Close()
		case <-hbStop:
		}
	}()

	for {
		t, payload, err := ReadFrame(conn)
		if ctx.Err() != nil {
			return true, ctx.Err()
		}
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) && !fe.Fatal {
				// Corrupt but well-delimited: skip the frame, keep the
				// connection.
				w.logf("sweep worker: rejected corrupt frame: %v", err)
				continue
			}
			if err != io.EOF {
				w.logf("sweep worker: connection lost: %v", err)
			}
			return false, err
		}
		w.lastInbound.Store(time.Now().UnixNano())
		msg, err := DecodeMessage(t, payload)
		if err != nil {
			w.logf("sweep worker: rejected corrupt payload: %v", err)
			continue
		}
		switch m := msg.(type) {
		case *Job:
			w.startJob(ctx, m)
		case *Heartbeat:
			// Pong: lastInbound already refreshed above.
		case *Cancel:
			w.cancelJobs(m.IDs)
		case *Done:
			w.logf("sweep worker: coordinator done, exiting")
			w.cancelJobs(nil)
			return true, nil
		default:
			w.logf("sweep worker: unexpected %v frame ignored", t)
		}
	}
}

// heartbeatLoop refreshes the leases of in-flight jobs and watches for a
// silent connection: if nothing valid arrives within PongTimeout the link
// is presumed black-holed and closed, which sends the read loop into the
// reconnect path.
func (w *worker) heartbeatLoop(conn net.Conn, stop <-chan struct{}) {
	t := time.NewTicker(w.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		silent := time.Since(time.Unix(0, w.lastInbound.Load()))
		if silent > w.cfg.PongTimeout {
			w.logf("sweep worker: no traffic for %v, dropping connection", silent)
			conn.Close()
			return
		}
		w.mu.Lock()
		ids := make([]uint64, 0, len(w.inflight))
		for id := range w.inflight {
			ids = append(ids, id)
		}
		w.mu.Unlock()
		if err := w.sendMsg(&Heartbeat{InFlight: ids}); err != nil {
			conn.Close()
			return
		}
	}
}

// sendMsg writes one message on the current connection, gzip-framing
// payloads worth compressing when the coordinator negotiated FlagGzipOK
// on this connection (in practice that is shard-result blobs — every
// other worker message is far below CompressMin).
func (w *worker) sendMsg(m Message) error {
	w.sendMu.Lock()
	defer w.sendMu.Unlock()
	w.mu.Lock()
	conn, gz := w.conn, w.gzip
	w.mu.Unlock()
	if conn == nil {
		return errors.New("sweep worker: not connected")
	}
	payload := m.payload()
	var flags byte
	if gz && len(payload) >= CompressMin {
		flags = FlagGzip
	}
	return WriteFrameFlags(conn, m.msgType(), flags, payload)
}

// deliver sends a result, buffering it for the next successful handshake
// when the connection is down.
func (w *worker) deliver(m Message) {
	if err := w.sendMsg(m); err != nil {
		w.mu.Lock()
		w.pending = append(w.pending, m)
		w.mu.Unlock()
	}
}

// flushPending re-delivers results buffered across a disconnect.
func (w *worker) flushPending() {
	w.mu.Lock()
	p := w.pending
	w.pending = nil
	w.mu.Unlock()
	for i, m := range p {
		if err := w.sendMsg(m); err != nil {
			w.mu.Lock()
			w.pending = append(p[i:], w.pending...)
			w.mu.Unlock()
			return
		}
	}
	if len(p) > 0 {
		w.logf("sweep worker: re-delivered %d buffered results", len(p))
	}
}

// startJob begins computing one assigned shard. Duplicate assignments of
// an in-flight job (a reassignment that landed back here) are ignored —
// the running computation will answer; a duplicate of a finished job is
// simply recomputed, which is safe because shards are deterministic.
func (w *worker) startJob(ctx context.Context, jm *Job) {
	w.mu.Lock()
	if _, dup := w.inflight[jm.ID]; dup {
		w.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	w.inflight[jm.ID] = cancel
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		defer cancel()
		msg := w.computeJob(jctx, jm)
		w.mu.Lock()
		delete(w.inflight, jm.ID)
		w.mu.Unlock()
		if msg != nil {
			w.deliver(msg)
		}
	}()
}

// cancelJobs aborts the listed in-flight jobs (all of them when ids is
// empty).
func (w *worker) cancelJobs(ids []uint64) {
	w.mu.Lock()
	if len(ids) == 0 {
		for _, cancel := range w.inflight {
			cancel()
		}
	} else {
		for _, id := range ids {
			if cancel, ok := w.inflight[id]; ok {
				cancel()
			}
		}
	}
	w.mu.Unlock()
}

// computeJob replays the job's campaign for its one shard and packages
// the outcome. A nil return means the job was cancelled and nobody wants
// the answer.
func (w *worker) computeJob(ctx context.Context, jm *Job) Message {
	data, err := w.replayShard(ctx, jm)
	if ctx.Err() != nil {
		return nil
	}
	if err != nil {
		return &JobError{ID: jm.ID, Msg: err.Error()}
	}
	return &Result{ID: jm.ID, Shard: jm.Shard, Data: data}
}

// replayShard is the capture half of the distribution model: re-run the
// campaign the job describes — same experiment, seed, budget tier, and
// parameter overrides, so every engine plan matches the coordinator's —
// with an executor that skips every shard except the requested one,
// computes that one, captures its encoding, and aborts the rest of the
// replay. Engine runs of the campaign other than the job's (earlier
// stages of a multi-stage experiment) run in full, because later stages
// may depend on their results; runs after the capture are cancelled away.
func (w *worker) replayShard(ctx context.Context, jm *Job) ([]byte, error) {
	r := &exp.Runner{
		Workers: jm.Workers,
		Quick:   jm.Quick,
		Accum:   jm.Accum,
		Bins:    jm.Bins,
	}
	if jm.HasSeed {
		seed := jm.Seed
		r.Seed = &seed
	}
	if len(jm.Params) > 0 {
		r.Params = json.RawMessage(jm.Params)
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var mu sync.Mutex
	var captured []byte
	var capErr error
	r.Exec = func(sj mc.ShardJob) (any, error) {
		if sj.Tag != jm.Tag {
			// A different engine run of the same campaign — typically an
			// earlier stage whose results feed the one we were asked for.
			// Compute it fully (gated by the worker's parallelism cap).
			select {
			case w.sem <- struct{}{}:
			case <-sj.Ctx.Done():
				return nil, sj.Ctx.Err()
			}
			defer func() { <-w.sem }()
			return sj.Run(), nil
		}
		if sj.Shards != jm.Shards {
			// The local plan disagrees with the coordinator's: shard
			// indices would mean different slices of work. Refuse rather
			// than return a shard of the wrong partition.
			err := fmt.Errorf("sweep worker: plan mismatch for %q: job wants shard %d of %d, local plan has %d shards",
				jm.Tag, jm.Shard, jm.Shards, sj.Shards)
			mu.Lock()
			if capErr == nil {
				capErr = err
			}
			mu.Unlock()
			cancel()
			return nil, err
		}
		if sj.Shard != jm.Shard {
			return nil, mc.ErrShardSkipped
		}
		select {
		case w.sem <- struct{}{}:
		case <-sj.Ctx.Done():
			return nil, sj.Ctx.Err()
		}
		v := func() any {
			defer func() { <-w.sem }()
			return sj.Run()
		}()
		b, err := sj.Encode(v)
		mu.Lock()
		if err != nil {
			if capErr == nil {
				capErr = err
			}
		} else {
			captured = b
		}
		mu.Unlock()
		// The requested shard is in hand (or provably unshippable):
		// abort the rest of the replay instead of computing shards nobody
		// asked for.
		cancel()
		return v, err
	}
	_, runErr := exp.Run(runCtx, jm.Experiment, r)
	mu.Lock()
	defer mu.Unlock()
	if capErr != nil {
		return nil, capErr
	}
	// Success requires the capture AND a live job context: a cancelled
	// replay can surface as a zero-value result from experiments that
	// swallow inner context errors, and those bits must never be merged.
	if captured != nil && ctx.Err() == nil {
		return captured, nil
	}
	if runErr == nil {
		return nil, fmt.Errorf("sweep worker: replay of %s finished without reaching shard %d of run %q",
			jm.Experiment, jm.Shard, jm.Tag)
	}
	return nil, runErr
}
