package sweep

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// gzipCompress returns the gzip encoding of p. BestSpeed is the right
// level here: shard-result blobs are gob streams dominated by runs of
// repeated structure, which deflate well even at the fastest setting,
// and the sender is a worker whose CPU belongs to shard compute.
func gzipCompress(p []byte) []byte {
	var buf bytes.Buffer
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("sweep: gzip level rejected: %v", err)) // BestSpeed is always valid
	}
	zw.Write(p) // a bytes.Buffer writer cannot fail
	zw.Close()
	return buf.Bytes()
}

// gzipDecompress inflates a FlagGzip payload. The output is bounded at
// MaxFramePayload — the same cap the plain length field honors — so a
// decompression bomb cannot force an allocation the frame layer would
// never have allowed on the wire. Failures are recoverable FrameErrors:
// the frame was well-delimited and its CRC (over the compressed wire
// bytes) checked out, only the contents are bad.
func gzipDecompress(t MsgType, p []byte) ([]byte, error) {
	zr, err := gzip.NewReader(bytes.NewReader(p))
	if err != nil {
		return nil, &FrameError{Reason: fmt.Sprintf("%v frame: bad gzip payload: %v", t, err)}
	}
	out, err := io.ReadAll(io.LimitReader(zr, MaxFramePayload+1))
	if err != nil {
		return nil, &FrameError{Reason: fmt.Sprintf("%v frame: corrupt gzip payload: %v", t, err)}
	}
	if len(out) > MaxFramePayload {
		return nil, &FrameError{Reason: fmt.Sprintf("%v frame: payload inflates past %d bytes", t, MaxFramePayload)}
	}
	return out, nil
}
