// Package sweep is the fault-tolerant multi-host transport of the
// experiment registry: a coordinator fans the Monte-Carlo shards of any
// registered campaign out to remote workers over a length-prefixed,
// checksummed frame protocol, and merges the returned shard payloads in
// shard order — bit-identical to a single-host mc.RunEnv run at any
// worker count and under any churn schedule.
//
// Robustness is the design center, because a single lost or duplicated
// shard silently biases a 1e9-sample CDF:
//
//   - every frame is validated (magic, version, type, bounded length,
//     payload CRC) before a byte of it is trusted; corrupt payloads are
//     rejected without killing the session, desynchronized streams drop
//     only the connection;
//   - every dispatched shard holds a lease refreshed by worker
//     heartbeats; expired leases reassign the shard, and results are
//     deduplicated by job ID so a slow worker's late answer can never
//     double-merge;
//   - workers reconnect with jittered exponential backoff and resume
//     their session by token, re-delivering results computed while
//     disconnected;
//   - when the worker pool drains to zero the coordinator finishes the
//     campaign locally.
package sweep

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Wire constants. The frame header is:
//
//	offset 0: magic 0xFA 0x51 ("FAult-mem Sweep, 1 family")
//	offset 2: protocol version (1 byte)
//	offset 3: message type (1 byte)
//	offset 4: payload length (uint32, big endian)
//	offset 8: payload CRC-32 (IEEE, big endian)
//	offset 12: payload
const (
	magic0, magic1 = 0xFA, 0x51
	// ProtocolVersion is bumped on any incompatible frame or payload
	// change; a coordinator rejects other versions at the frame layer.
	ProtocolVersion = 1
	headerSize      = 12
	// MaxFramePayload bounds a single frame. A shard result is at most a
	// few hundred KB of accumulator state at paper-scale budgets; 64 MB
	// leaves two orders of magnitude of headroom while making a corrupt
	// length field detectable before any allocation happens.
	MaxFramePayload = 64 << 20
)

// The type byte's low six bits carry the MsgType; the high two bits are
// per-frame flags. A peer that predates the flags reads a flagged type
// byte as an unknown message type — a recoverable frame error (the
// length and CRC fields are flag-agnostic), so flagged frames degrade to
// a counted skip instead of a dropped connection.
const (
	// typeMask extracts the MsgType from the frame's type byte.
	typeMask = 0x3F
	// FlagGzip marks a frame whose payload is gzip-compressed. The
	// length and CRC fields cover the compressed wire bytes, so every
	// receiver — including one that cannot inflate — still delimits and
	// validates the frame identically.
	FlagGzip = 0x80
	// FlagGzipOK advertises that the frame's sender can decode FlagGzip
	// frames. A worker sets it on Hello; the coordinator echoes it on
	// Welcome only to workers that advertised, so compression is only
	// ever used on a connection where both ends opted in.
	FlagGzipOK = 0x40

	// CompressMin is the smallest payload senders bother compressing.
	// Below it the gzip header overhead and the extra CPU beat any
	// saving; shard-result blobs are the payloads that matter.
	CompressMin = 1 << 10
)

// MsgType enumerates the protocol's frame types.
type MsgType byte

const (
	// MsgHello opens a connection (worker -> coordinator): an empty token
	// requests a new session, a previous token requests session resume.
	MsgHello MsgType = iota + 1
	// MsgWelcome acknowledges Hello (coordinator -> worker) and carries
	// the session token the worker must present on reconnect.
	MsgWelcome
	// MsgJob assigns one shard of a campaign to a worker.
	MsgJob
	// MsgResult delivers a computed shard payload back to the coordinator.
	MsgResult
	// MsgJobError reports that a worker could not compute an assigned
	// shard (unencodable shard type, plan mismatch, experiment error).
	MsgJobError
	// MsgHeartbeat refreshes the session and the leases of the in-flight
	// jobs it lists; the coordinator echoes an empty heartbeat as a pong.
	MsgHeartbeat
	// MsgCancel tells a worker to abandon the listed jobs (all in-flight
	// jobs when the list is empty).
	MsgCancel
	// MsgDone tells a worker the coordinator is finished for good; the
	// worker exits cleanly instead of reconnecting.
	MsgDone

	// The client half of the protocol: the campaign-submission surface of
	// `faultmem serve`. A pre-serve peer reads these as unknown frame
	// types — a recoverable skip, so mixed-version deployments degrade
	// instead of desynchronizing.

	// MsgClientHello opens a client connection (client -> server): an
	// empty token requests a new client session, a previous token
	// requests session resume (re-attaching running jobs and draining
	// results buffered while disconnected).
	MsgClientHello
	// MsgClientWelcome acknowledges ClientHello (server -> client) and
	// carries the session token plus the server's draining state.
	MsgClientWelcome
	// MsgSubmit submits one campaign: a registry name plus the runner
	// knobs, exactly the wire form exp.Runner.Params accepts.
	MsgSubmit
	// MsgSubmitReply answers a Submit with the admitted job ID (or a
	// rejection).
	MsgSubmitReply
	// MsgJobControl is a status/cancel/list verb against admitted jobs.
	MsgJobControl
	// MsgJobInfo answers a JobControl with a JSON status blob.
	MsgJobInfo
	// MsgSnapshot is a periodic server -> client push of one running
	// job's partial state (stage progress, merged-sample counts).
	MsgSnapshot
	// MsgFinal is the server -> client push of one job's terminal
	// outcome: the final ExperimentResult JSON or the error that ended it.
	MsgFinal
	msgTypeEnd
)

func (t MsgType) valid() bool { return t >= MsgHello && t < msgTypeEnd }

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgJob:
		return "job"
	case MsgResult:
		return "result"
	case MsgJobError:
		return "joberror"
	case MsgHeartbeat:
		return "heartbeat"
	case MsgCancel:
		return "cancel"
	case MsgDone:
		return "done"
	case MsgClientHello:
		return "clienthello"
	case MsgClientWelcome:
		return "clientwelcome"
	case MsgSubmit:
		return "submit"
	case MsgSubmitReply:
		return "submitreply"
	case MsgJobControl:
		return "jobcontrol"
	case MsgJobInfo:
		return "jobinfo"
	case MsgSnapshot:
		return "snapshot"
	case MsgFinal:
		return "final"
	default:
		return fmt.Sprintf("type(%d)", byte(t))
	}
}

// FrameError is a frame-layer validation failure. Fatal errors mean the
// byte stream can no longer be trusted to be frame-aligned (bad magic,
// bad version, oversized length, truncation mid-frame): the receiver
// must drop the connection — the session survives and the peer
// reconnects. Non-fatal errors (checksum mismatch, unknown type) consumed
// a complete, well-delimited frame: the receiver rejects the frame and
// keeps the connection.
type FrameError struct {
	Fatal  bool
	Reason string
}

func (e *FrameError) Error() string {
	kind := "recoverable"
	if e.Fatal {
		kind = "fatal"
	}
	return fmt.Sprintf("sweep: %s frame error: %s", kind, e.Reason)
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice. It panics on an oversized payload — callers bound payload sizes
// before framing.
func AppendFrame(dst []byte, t MsgType, payload []byte) []byte {
	return AppendFrameFlags(dst, t, 0, payload)
}

// AppendFrameFlags is AppendFrame with frame flags. Zero flags produce
// a frame byte-identical to AppendFrame's. FlagGzip compresses the
// payload before framing — and silently clears itself when compression
// does not shrink the payload, so an incompressible blob travels plain
// and a receiver never inflates for nothing. It panics on flags outside
// the defined set or a MsgType that collides with the flag bits.
func AppendFrameFlags(dst []byte, t MsgType, flags byte, payload []byte) []byte {
	if byte(t)&^typeMask != 0 {
		panic(fmt.Sprintf("sweep: message type %d collides with frame flags", byte(t)))
	}
	if flags&typeMask != 0 {
		panic(fmt.Sprintf("sweep: invalid frame flags %#02x", flags))
	}
	if len(payload) > MaxFramePayload {
		panic(fmt.Sprintf("sweep: oversized %v frame: %d bytes", t, len(payload)))
	}
	if flags&FlagGzip != 0 {
		if z := gzipCompress(payload); len(z) < len(payload) {
			payload = z
		} else {
			flags &^= FlagGzip
		}
	}
	var hdr [headerSize]byte
	hdr[0], hdr[1] = magic0, magic1
	hdr[2] = ProtocolVersion
	hdr[3] = byte(t) | flags
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// WriteFrame writes one frame to w in a single Write call, so concurrent
// writers serialized by a mutex never interleave partial frames.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	return WriteFrameFlags(w, t, 0, payload)
}

// WriteFrameFlags is WriteFrame with frame flags (see AppendFrameFlags).
func WriteFrameFlags(w io.Writer, t MsgType, flags byte, payload []byte) error {
	buf := AppendFrameFlags(make([]byte, 0, headerSize+len(payload)), t, flags, payload)
	_, err := w.Write(buf)
	return err
}

// parseHeader validates the fixed header and returns the declared type
// payload length, and checksum. Errors are always fatal: a header that
// does not parse means the stream is not frame-aligned.
func parseHeader(hdr []byte) (t MsgType, length int, sum uint32, err error) {
	if hdr[0] != magic0 || hdr[1] != magic1 {
		return 0, 0, 0, &FrameError{Fatal: true, Reason: fmt.Sprintf("bad magic %#02x%02x", hdr[0], hdr[1])}
	}
	if hdr[2] != ProtocolVersion {
		return 0, 0, 0, &FrameError{Fatal: true, Reason: fmt.Sprintf("unsupported protocol version %d", hdr[2])}
	}
	n := binary.BigEndian.Uint32(hdr[4:8])
	if n > MaxFramePayload {
		return 0, 0, 0, &FrameError{Fatal: true, Reason: fmt.Sprintf("oversized frame: %d bytes", n)}
	}
	return MsgType(hdr[3]), int(n), binary.BigEndian.Uint32(hdr[8:12]), nil
}

// ParseFrame parses one frame from the front of b. It returns the frame's
// type and payload plus the number of bytes consumed. An incomplete
// buffer returns io.ErrUnexpectedEOF (n = 0): the caller needs more
// bytes. Validation failures return a *FrameError; for non-fatal ones
// (bad checksum, unknown type) n still reports the full frame size, so a
// streaming caller can skip the rejected frame and stay aligned. It is
// deliberately flag-blind — a flagged type byte parses as an unknown
// type, exactly as a pre-flags receiver sees it — so its round-trip
// with AppendFrame stays exact; connection read paths use
// ReadFrame/ReadFrameFlags, which understand flags.
func ParseFrame(b []byte) (t MsgType, payload []byte, n int, err error) {
	if len(b) < headerSize {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	t, length, sum, err := parseHeader(b[:headerSize])
	if err != nil {
		return 0, nil, 0, err
	}
	if len(b) < headerSize+length {
		return 0, nil, 0, io.ErrUnexpectedEOF
	}
	n = headerSize + length
	payload = b[headerSize:n]
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, nil, n, &FrameError{Reason: fmt.Sprintf("%v frame checksum mismatch", t)}
	}
	if !t.valid() {
		return 0, nil, n, &FrameError{Reason: fmt.Sprintf("unknown frame type %d", byte(t))}
	}
	return t, payload, n, nil
}

// ReadFrame reads and validates one frame from r, transparently
// inflating FlagGzip payloads (the frame's own flags are dropped; use
// ReadFrameFlags to see them). A clean EOF at a frame boundary returns
// io.EOF. Fatal *FrameErrors (desynchronized stream, truncation
// mid-frame) require the caller to drop the connection; non-fatal ones
// consumed exactly one complete frame, and the caller may reject it and
// keep reading.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	t, _, payload, err := ReadFrameFlags(r)
	return t, payload, err
}

// ReadFrameFlags is ReadFrame exposing the frame's flag bits. The
// returned payload is already inflated when FlagGzip was set (the flag
// stays visible to the caller); a payload that fails to inflate or
// inflates past MaxFramePayload is a recoverable error — the frame was
// well-delimited and CRC-valid on the wire, only its contents are bad.
func ReadFrameFlags(r io.Reader) (MsgType, byte, []byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, nil, io.EOF
		}
		return 0, 0, nil, &FrameError{Fatal: true, Reason: fmt.Sprintf("truncated header: %v", err)}
	}
	raw, length, sum, err := parseHeader(hdr[:])
	if err != nil {
		return 0, 0, nil, err
	}
	flags := byte(raw) &^ typeMask
	t := raw & typeMask
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, &FrameError{Fatal: true, Reason: fmt.Sprintf("truncated %v payload: %v", t, err)}
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return 0, 0, nil, &FrameError{Reason: fmt.Sprintf("%v frame checksum mismatch", t)}
	}
	if !t.valid() {
		return 0, 0, nil, &FrameError{Reason: fmt.Sprintf("unknown frame type %d", byte(t))}
	}
	if flags&FlagGzip != 0 {
		if payload, err = gzipDecompress(t, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return t, flags, payload, nil
}

// ReadRawFrame reads one frame and returns its raw bytes (header plus
// payload) without verifying the checksum or type — the tap the chaos
// proxy uses to forward, corrupt, or truncate whole frames while staying
// frame-aligned itself. Header-shape failures are returned as-is.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, &FrameError{Fatal: true, Reason: fmt.Sprintf("truncated header: %v", err)}
	}
	_, length, _, err := parseHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	buf := make([]byte, headerSize+length)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
		return nil, &FrameError{Fatal: true, Reason: fmt.Sprintf("truncated payload: %v", err)}
	}
	return buf, nil
}

// IsFatalFrameError reports whether err is a frame error that requires
// dropping the connection (the session itself survives).
func IsFatalFrameError(err error) bool {
	fe, ok := err.(*FrameError)
	return ok && fe.Fatal
}
