package sweep

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"faultmem/internal/yield"
)

// roundTripMsg frames a message, re-parses the frame, and decodes the
// payload — the full wire path.
func roundTripMsg(t *testing.T, m Message) Message {
	t.Helper()
	raw := EncodeMessage(m)
	typ, payload, n, err := ParseFrame(raw)
	if err != nil || n != len(raw) {
		t.Fatalf("frame of %T did not parse: %v", m, err)
	}
	if typ != m.msgType() {
		t.Fatalf("frame type %v, want %v", typ, m.msgType())
	}
	back, err := DecodeMessage(typ, payload)
	if err != nil {
		t.Fatalf("decode of %T: %v", m, err)
	}
	return back
}

// TestMessageRoundTrips: every message type survives the full
// encode→frame→parse→decode path unchanged.
func TestMessageRoundTrips(t *testing.T) {
	seed := int64(-42)
	msgs := []Message{
		&Hello{},
		&Hello{Token: "resume-me"},
		&Welcome{Token: "a1b2c3d4"},
		&Job{ID: 7, Experiment: "fig5", Tag: "fig5", Shard: 3, Shards: 64,
			HasSeed: true, Seed: seed, Quick: true, Workers: 8,
			Accum: yield.AccumHist, Bins: 512, Params: []byte(`{"CDF":{"Trun":10}}`)},
		&Job{ID: 8, Experiment: "fig7", Tag: "fig7/knn", Shard: 0, Shards: 1},
		&Result{ID: 7, Shard: 3, Data: bytes.Repeat([]byte{0x00, 0xFF}, 500)},
		&Result{ID: 9, Shard: 0},
		&JobError{ID: 7, Msg: "shard type not gob-encodable"},
		&Heartbeat{},
		&Heartbeat{InFlight: []uint64{1, 2, 3, 1 << 63}},
		&Cancel{},
		&Cancel{IDs: []uint64{42}},
		&Done{},
	}
	for _, m := range msgs {
		back := roundTripMsg(t, m)
		// Empty slices may come back nil; normalize before comparing.
		if !reflect.DeepEqual(normalize(m), normalize(back)) {
			t.Fatalf("round trip of %T:\n got %+v\nwant %+v", m, back, m)
		}
	}
}

func normalize(m Message) Message {
	switch v := m.(type) {
	case *Job:
		c := *v
		if len(c.Params) == 0 {
			c.Params = nil
		}
		return &c
	case *Result:
		c := *v
		if len(c.Data) == 0 {
			c.Data = nil
		}
		return &c
	case *Heartbeat:
		c := *v
		if len(c.InFlight) == 0 {
			c.InFlight = nil
		}
		return &c
	case *Cancel:
		c := *v
		if len(c.IDs) == 0 {
			c.IDs = nil
		}
		return &c
	}
	return m
}

// mustDecodeErr asserts a payload is rejected with a recoverable
// *FrameError — payload-shape failures never kill the connection.
func mustDecodeErr(t *testing.T, name string, typ MsgType, payload []byte) {
	t.Helper()
	_, err := DecodeMessage(typ, payload)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("%s: decode returned %v, want *FrameError", name, err)
	}
	if fe.Fatal {
		t.Fatalf("%s: payload-shape error classified fatal: %v", name, fe)
	}
}

// TestDecodeRejectsCorruptPayloads is the payload-level adversarial
// catalogue, after the idiom of length-prefix protocol test suites:
// every variable-length field lies about its size, overruns the
// remaining buffer, or leaves trailing bytes.
func TestDecodeRejectsCorruptPayloads(t *testing.T) {
	goodJob := (&Job{ID: 1, Experiment: "fig5", Tag: "fig5", Shard: 0, Shards: 64}).encode()

	type tc struct {
		name    string
		typ     MsgType
		payload []byte
	}
	cases := []tc{
		{"hello: token length beyond payload", MsgHello, []byte{10, 'a', 'b'}},
		{"hello: trailing bytes", MsgHello, []byte{1, 'a', 'x'}},
		{"welcome: empty token", MsgWelcome, []byte{0}},
		{"welcome: truncated", MsgWelcome, []byte{}},
		{"job: empty payload", MsgJob, []byte{}},
		{"job: truncated after id", MsgJob, goodJob[:8]},
		{"job: truncated mid-name", MsgJob, goodJob[:10]},
		{"job: trailing bytes", MsgJob, append(append([]byte{}, goodJob...), 0xEE)},
		{"result: truncated blob", MsgResult, func() []byte {
			b := (&Result{ID: 1, Shard: 2, Data: []byte("abcdef")}).encode()
			return b[:len(b)-3]
		}()},
		{"result: blob length beyond payload", MsgResult, func() []byte {
			b := (&Result{ID: 1, Shard: 2, Data: []byte("abc")}).encode()
			binary.BigEndian.PutUint32(b[12:16], 1000)
			return b
		}()},
		{"joberror: truncated", MsgJobError, []byte{0, 0, 0, 0}},
		{"heartbeat: id list beyond payload", MsgHeartbeat, []byte{0, 0, 0, 3, 0, 0, 0, 0, 0, 0, 0, 1}},
		{"heartbeat: absurd id count", MsgHeartbeat, []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"cancel: trailing bytes", MsgCancel, append((&Cancel{IDs: []uint64{1}}).encode(), 0)},
		{"done: non-empty payload", MsgDone, []byte{1}},
	}

	// Job field-validation cases: structurally sound, semantically absurd.
	for _, mut := range []struct {
		name string
		mod  func(*Job)
	}{
		{"job: empty experiment name", func(j *Job) { j.Experiment = "" }},
		{"job: zero shard count", func(j *Job) { j.Shards = 0 }},
		{"job: shard out of range", func(j *Job) { j.Shard = 64 }},
	} {
		j := &Job{ID: 1, Experiment: "fig5", Tag: "fig5", Shard: 0, Shards: 64}
		mut.mod(j)
		cases = append(cases, tc{mut.name, MsgJob, j.encode()})
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mustDecodeErr(t, c.name, c.typ, c.payload)
		})
	}
}

// TestDecodedBlobsDoNotAliasInput: decoded params and data must be
// copies, so a recycled read buffer cannot mutate an in-flight message.
func TestDecodedBlobsDoNotAliasInput(t *testing.T) {
	payload := (&Result{ID: 1, Shard: 0, Data: []byte("precious")}).encode()
	m, err := DecodeMessage(MsgResult, payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xDD
	}
	if got := string(m.(*Result).Data); got != "precious" {
		t.Fatalf("decoded data aliases the wire buffer: %q", got)
	}
}
