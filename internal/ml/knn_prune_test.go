package ml

import (
	"math"
	"sort"
	"testing"

	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

// naiveKNNPredict is the reference full-scan classifier: every
// distance computed with mat.SqDist, the K nearest kept by a stable
// sort on (distance, training index), and the same
// majority-vote/smallest-label tie rule as KNN. It exists to pin the
// blocked, exact-pruned predictOne bit for bit.
func naiveKNNPredict(train *mat.Dense, labels []float64, k int, q []float64) float64 {
	n, _ := train.Dims()
	type cand struct {
		dist float64
		idx  int
	}
	cands := make([]cand, n)
	for t := 0; t < n; t++ {
		cands[t] = cand{mat.SqDist(q, train.RawRow(t)), t}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	kept := cands[:k]
	bestLabel, bestVotes := 0.0, -1
	for i := range kept {
		v := 0
		for j := range kept {
			if labels[kept[j].idx] == labels[kept[i].idx] {
				v++
			}
		}
		l := labels[kept[i].idx]
		if v > bestVotes || (v == bestVotes && l < bestLabel) {
			bestLabel, bestVotes = l, v
		}
	}
	return bestLabel
}

// TestKNNPrunedMatchesNaive pins the pruned scan's contract: blocked
// accumulation and early abandonment must keep the identical neighbor
// multiset, so every prediction is bit-identical to the naive
// full-scan reference — across narrow (no checkpoints) and wide
// (checkpointed) feature counts, including non-multiple-of-4 training
// sizes that exercise the scalar remainder.
func TestKNNPrunedMatchesNaive(t *testing.T) {
	rng := stats.NewRand(31)
	for _, tc := range []struct{ n, d, k int }{
		{203, 15, 5},
		{120, 3, 1},
		{97, 33, 7},
		{258, 128, 5},
	} {
		x := mat.NewDense(tc.n, tc.d)
		y := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = float64(rng.Intn(4))
		}
		m := NewKNN(tc.k)
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		q := mat.NewDense(50, tc.d)
		for i := 0; i < 50; i++ {
			for j := 0; j < tc.d; j++ {
				q.Set(i, j, rng.NormFloat64())
			}
		}
		got := m.Predict(q)
		for i := 0; i < 50; i++ {
			want := naiveKNNPredict(x, y, tc.k, q.RawRow(i))
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("n=%d d=%d k=%d query %d: pruned %g != naive %g",
					tc.n, tc.d, tc.k, i, got[i], want)
			}
		}
	}
}

// TestKNNPrunedMatchesNaiveWithTies stresses the deterministic
// tie-break: duplicated training rows produce exactly equal distances,
// and the earlier row must win in both scans.
func TestKNNPrunedMatchesNaiveWithTies(t *testing.T) {
	rng := stats.NewRand(77)
	n, d := 90, 6
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		src := i
		if i >= n/2 {
			src = i - n/2 // second half duplicates the first, other labels
		}
		for j := 0; j < d; j++ {
			if src == i {
				x.Set(i, j, math.Round(rng.NormFloat64()*2)/2)
			} else {
				x.Set(i, j, x.At(src, j))
			}
		}
		y[i] = float64(i % 3)
	}
	m := NewKNN(4)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := mat.NewDense(30, d)
	for i := 0; i < 30; i++ {
		for j := 0; j < d; j++ {
			q.Set(i, j, math.Round(rng.NormFloat64()*2)/2)
		}
	}
	got := m.Predict(q)
	for i := 0; i < 30; i++ {
		want := naiveKNNPredict(x, y, 4, q.RawRow(i))
		if math.Float64bits(got[i]) != math.Float64bits(want) {
			t.Fatalf("query %d: pruned %g != naive %g", i, got[i], want)
		}
	}
}

// TestKNNPairedMatchesOne pins the paired narrow-feature scan: every
// prediction from predictPair must be bit-identical to predictOne on
// the same query, including duplicate-row ties and the
// non-multiple-of-4 training remainder, and across odd query counts
// (where the last query falls back to the one-query path).
func TestKNNPairedMatchesOne(t *testing.T) {
	rng := stats.NewRand(19)
	for _, tc := range []struct{ n, d, k, nq int }{
		{203, 15, 5, 51},
		{120, 3, 1, 2},
		{64, 32, 7, 33},
		{90, 6, 4, 40},
	} {
		x := mat.NewDense(tc.n, tc.d)
		y := make([]float64, tc.n)
		for i := 0; i < tc.n; i++ {
			src := i
			if i >= tc.n/2 {
				src = i - tc.n/2 // duplicates force exact distance ties
			}
			for j := 0; j < tc.d; j++ {
				if src == i {
					x.Set(i, j, math.Round(rng.NormFloat64()*2)/2)
				} else {
					x.Set(i, j, x.At(src, j))
				}
			}
			y[i] = float64(i % 3)
		}
		m := NewKNN(tc.k)
		if err := m.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		q := mat.NewDense(tc.nq, tc.d)
		for i := 0; i < tc.nq; i++ {
			for j := 0; j < tc.d; j++ {
				q.Set(i, j, math.Round(rng.NormFloat64()*2)/2)
			}
		}
		var ws Workspace
		got := m.PredictIn(&ws, q) // paired path: d <= 32
		buf := make([]neighbor, 0, tc.k)
		for i := 0; i < tc.nq; i++ {
			want := m.predictOne(q.RawRow(i), buf[:0])
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Fatalf("n=%d d=%d k=%d query %d: paired %g != one-query %g",
					tc.n, tc.d, tc.k, i, got[i], want)
			}
		}
	}
}

// harPredictSetup builds the Fig. 7c-shaped KNN problem (HAR windows,
// 0.8:0.2 split) for the prediction benchmarks.
func harPredictSetup(b *testing.B) (*KNN, *mat.Dense, *dataset.Dataset) {
	b.Helper()
	d := dataset.HAR(7, dataset.DefaultHAR())
	train, test := d.Split(0.8, 3)
	m := NewKNN(5)
	if err := m.Fit(train.X, train.Y); err != nil {
		b.Fatal(err)
	}
	return m, test.X, train
}

// BenchmarkKNNPredict measures the shipped blocked/pruned prediction
// path at the Fig. 7c geometry (1200 training rows x 15 features, 300
// queries per op).
func BenchmarkKNNPredict(b *testing.B) {
	m, q, _ := harPredictSetup(b)
	var ws Workspace
	m.PredictIn(&ws, q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictIn(&ws, q)
	}
}

// unprunedPredictOne is the pre-PR scan — one running sum per
// candidate via mat.SqDist, same K-buffer insertion — kept here as the
// before side of BenchmarkKNNPredict.
func (m *KNN) unprunedPredictOne(q []float64, best []neighbor) float64 {
	nTrain, _ := m.train.Dims()
	for t := 0; t < nTrain; t++ {
		best = m.consider(best, mat.SqDist(q, m.train.RawRow(t)), t)
	}
	bestLabel, bestVotes := 0.0, -1
	for i := range best {
		v := 0
		for j := range best {
			if best[j].label == best[i].label {
				v++
			}
		}
		if v > bestVotes || (v == bestVotes && best[i].label < bestLabel) {
			bestLabel, bestVotes = best[i].label, v
		}
	}
	return bestLabel
}

// BenchmarkKNNPredictUnpruned is the pre-PR full-scan reference for
// the same workload — the before side of the README's kernel table.
func BenchmarkKNNPredictUnpruned(b *testing.B) {
	m, q, _ := harPredictSetup(b)
	nq, _ := q.Dims()
	buf := make([]neighbor, 0, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < nq; r++ {
			m.unprunedPredictOne(q.RawRow(r), buf[:0])
		}
	}
}

// TestKNNPredictDimensionMismatchPanics pins the explicit query-width
// check: the blocked scan truncates rows to the query length, so a
// narrower (or wider) query must fail loudly up front, as the per-row
// SqDist length panic used to guarantee.
func TestKNNPredictDimensionMismatchPanics(t *testing.T) {
	x := mat.NewDense(8, 4)
	y := make([]float64, 8)
	m := NewKNN(2)
	if err := m.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	for _, qd := range []int{3, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("query width %d on 4-feature model did not panic", qd)
				}
			}()
			m.Predict(mat.NewDense(2, qd))
		}()
	}
}
