// Package ml implements the three data-mining algorithms of Table 1 from
// scratch on the internal/mat kernel: elastic-net regression (cyclic
// coordinate descent with Gram caching and an active-set strategy),
// principal component analysis (covariance + top-k subspace-iteration
// eigensolver), and k-nearest-neighbors classification (exact-pruned
// distance scans) — the counterparts of the Scikit-Learn models the
// paper's evaluation uses [21].
package ml

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
)

// ElasticNet is a linear regression model with combined L1/L2
// regularization, fit by cyclic coordinate descent on standardized
// features:
//
//	min_b (1/2n)||y - Xb||^2 + Alpha*(L1Ratio*||b||_1 + (1-L1Ratio)/2*||b||^2)
//
// matching Scikit-Learn's parameterization.
type ElasticNet struct {
	// Alpha is the overall regularization strength (default 0.01).
	Alpha float64
	// L1Ratio mixes L1 vs L2 (1 = lasso, 0 = ridge; default 0.5).
	L1Ratio float64
	// MaxIter bounds the coordinate-descent sweeps (default 300).
	MaxIter int
	// Tol stops iteration when the largest coefficient move in a sweep
	// falls below it (default 1e-6).
	Tol float64
	// Standardize selects whether features are scaled to zero mean / unit
	// variance before fitting. Scikit-Learn's ElasticNet — the paper's
	// implementation [21] — fits on raw features (only the intercept is
	// centered), so the Fig. 7 experiments leave this false. Coordinate
	// descent handles raw scales via per-column norms either way.
	Standardize bool

	coef      []float64
	intercept float64
	scaler    *mat.Standardizer
	iters     int
}

// NewElasticNet returns a model with the default hyperparameters on raw
// features (Scikit-Learn-compatible behaviour).
func NewElasticNet() *ElasticNet {
	return &ElasticNet{Alpha: 0.01, L1Ratio: 0.5, MaxIter: 300, Tol: 1e-6}
}

// Fit learns the coefficients from the training set. It standardizes X
// internally and centers y; Predict applies the same transform.
func (e *ElasticNet) Fit(x *mat.Dense, y []float64) error {
	return e.FitIn(nil, x, y)
}

// FitIn is Fit backed by a reusable workspace: every training buffer
// (standardized copy, residual, coefficients, column norms, Gram
// matrix, active-coordinate list) comes from ws, so a warm workspace
// makes repeated fits allocation-free. The
// result is bit-identical to Fit. The fitted model borrows ws (see
// Workspace); a nil ws allocates fresh buffers.
func (e *ElasticNet) FitIn(ws *Workspace, x *mat.Dense, y []float64) error {
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	if n != len(y) {
		return fmt.Errorf("ml: X rows %d != y length %d", n, len(y))
	}
	if n < 2 {
		return fmt.Errorf("ml: need at least 2 samples, have %d", n)
	}
	// Defaults stay local: Fit must not write hyperparameters back into
	// the receiver (a config struct shared across trials would be
	// rewritten mid-experiment).
	maxIter := e.MaxIter
	if maxIter <= 0 {
		maxIter = 300
	}
	tol := e.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	// Scikit-compatible fit_intercept behaviour when not standardizing:
	// center the columns but keep their raw scale.
	e.scaler = ws.fitScaler(x, e.Standardize)
	ws.z = e.scaler.ApplyInto(mat.Reshape(ws.z, n, d), x)
	z := ws.z

	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	r := floats(&ws.resid, n) // residual y - Zb (centered)
	for i := range r {
		r[i] = y[i] - yMean
	}

	b := floats(&ws.coef, d)
	clear(b)
	nf := float64(n)
	l1 := e.Alpha * e.L1Ratio
	l2 := e.Alpha * (1 - e.L1Ratio)

	// Precompute column squared norms / n (row-major accumulation, same
	// per-column addition order as a column walk).
	colSq := floats(&ws.colSq, d)
	clear(colSq)
	for i := 0; i < n; i++ {
		row := z.RawRow(i)
		for j, v := range row {
			colSq[j] += v * v
		}
	}
	for j := range colSq {
		colSq[j] /= nf
	}

	// Two coordinate-descent representations, selected by geometry:
	//
	//   - Gram mode (n >= d, every Fig. 7 benchmark): cache
	//     G = Z'Z/n and c = Z'r0/n once — O(n*d^2/2) — and maintain
	//     gb = G*b incrementally, so each coordinate update costs O(d)
	//     instead of O(n) (glmnet's "covariance updates").
	//   - Residual mode (d > n): the classic residual recurrence, where
	//     the Gram matrix would cost more to build than it saves.
	//
	// Both modes run the same active-set strategy: full KKT-checking
	// passes over every coordinate alternate with cheap sweeps over the
	// currently nonzero coordinates, and the fit only terminates when a
	// full pass moves nothing — the same stationarity condition as
	// plain cyclic descent, so both converge to the same optimum.
	useGram := n >= d
	var gram *mat.Dense
	var zty, gb []float64
	if useGram {
		ws.gram = mat.Reshape(ws.gram, d, d)
		gram = ws.gram
		for i := 0; i < n; i++ {
			row := z.RawRow(i)
			for a, va := range row {
				if va == 0 {
					continue
				}
				grow := gram.RawRow(a)
				for bj := a; bj < d; bj++ {
					grow[bj] += va * row[bj]
				}
			}
		}
		for a := 0; a < d; a++ {
			grow := gram.RawRow(a)
			for bj := a; bj < d; bj++ {
				v := grow[bj] / nf
				grow[bj] = v
				gram.RawRow(bj)[a] = v
			}
		}
		zty = floats(&ws.zty, d)
		clear(zty)
		for i := 0; i < n; i++ {
			row := z.RawRow(i)
			ri := r[i]
			for j, v := range row {
				zty[j] += v * ri
			}
		}
		for j := range zty {
			zty[j] /= nf
		}
		gb = floats(&ws.gb, d)
		clear(gb)
	}

	// The active list must be non-nil even when empty: the sweep
	// helpers read a nil index list as "every coordinate".
	if ws.active == nil {
		ws.active = make([]int, 0, d)
	}
	iters := 0
	for iters < maxIter {
		var moved float64
		if useGram {
			moved = gramSweep(gram, zty, gb, colSq, b, l1, l2, nil)
		} else {
			moved = residSweep(z, r, colSq, b, nf, l1, l2, nil)
		}
		iters++
		if moved < tol {
			break
		}
		ws.active = ws.active[:0]
		for j := 0; j < d; j++ {
			if b[j] != 0 {
				ws.active = append(ws.active, j)
			}
		}
		for iters < maxIter {
			var mv float64
			if useGram {
				mv = gramSweep(gram, zty, gb, colSq, b, l1, l2, ws.active)
			} else {
				mv = residSweep(z, r, colSq, b, nf, l1, l2, ws.active)
			}
			iters++
			if mv < tol {
				break
			}
		}
	}
	e.iters = iters
	e.coef = b
	e.intercept = yMean
	return nil
}

// gramSweep runs one coordinate-descent pass in Gram mode over idx
// (nil = all coordinates) and returns the largest coefficient move.
// gb tracks G*b and is updated incrementally: with the Gram matrix
// cached, rho_j = c_j - (G b)_j + G_jj b_j needs no pass over the
// samples, so a coordinate update is O(d) however large n is.
func gramSweep(gram *mat.Dense, zty, gb, colSq, b []float64, l1, l2 float64, idx []int) float64 {
	d := len(b)
	maxMove := 0.0
	nIdx := d
	if idx != nil {
		nIdx = len(idx)
	}
	for s := 0; s < nIdx; s++ {
		j := s
		if idx != nil {
			j = idx[s]
		}
		cj := colSq[j]
		if cj == 0 {
			continue
		}
		rho := zty[j] - gb[j] + cj*b[j]
		newB := softThreshold(rho, l1) / (cj + l2)
		if delta := newB - b[j]; delta != 0 {
			grow := gram.RawRow(j)
			for m, gv := range grow {
				gb[m] += gv * delta
			}
			if mv := math.Abs(delta); mv > maxMove {
				maxMove = mv
			}
			b[j] = newB
		}
	}
	return maxMove
}

// residSweep runs one coordinate-descent pass in residual mode over
// idx (nil = all coordinates) and returns the largest coefficient
// move. Each update recomputes the column/residual correlation and
// folds the move back into r — O(n) per coordinate, preferable only
// when d > n makes the Gram matrix a bad trade.
func residSweep(z *mat.Dense, r, colSq, b []float64, nf, l1, l2 float64, idx []int) float64 {
	n, d := z.Dims()
	maxMove := 0.0
	nIdx := d
	if idx != nil {
		nIdx = len(idx)
	}
	for s := 0; s < nIdx; s++ {
		j := s
		if idx != nil {
			j = idx[s]
		}
		if colSq[j] == 0 {
			continue
		}
		// rho = (1/n) * x_j . (r + x_j*b_j)
		rho := 0.0
		for i := 0; i < n; i++ {
			rho += z.At(i, j) * r[i]
		}
		rho = rho/nf + colSq[j]*b[j]
		newB := softThreshold(rho, l1) / (colSq[j] + l2)
		if delta := newB - b[j]; delta != 0 {
			for i := 0; i < n; i++ {
				r[i] -= delta * z.At(i, j)
			}
			if mv := math.Abs(delta); mv > maxMove {
				maxMove = mv
			}
			b[j] = newB
		}
	}
	return maxMove
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Predict returns the fitted values for x. Fit must have been called.
func (e *ElasticNet) Predict(x *mat.Dense) []float64 {
	return e.PredictIn(nil, x)
}

// PredictIn is Predict backed by a reusable workspace: the standardized
// copy of x and the output vector come from ws, so a warm workspace
// predicts allocation-free. The returned slice aliases ws and stays
// valid until the next PredictIn/ScoreIn on it. A nil ws allocates
// fresh buffers.
func (e *ElasticNet) PredictIn(ws *Workspace, x *mat.Dense) []float64 {
	if e.coef == nil {
		panic("ml: ElasticNet.Predict before Fit")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	ws.zEval = e.scaler.ApplyInto(mat.Reshape(ws.zEval, n, d), x)
	z := ws.zEval
	out := floats(&ws.preds, n)
	for i := 0; i < n; i++ {
		out[i] = e.intercept + mat.Dot(z.RawRow(i), e.coef)
	}
	return out
}

// Score returns the coefficient of determination R² on (x, y), the
// quality metric of the Elasticnet row in Table 1.
func (e *ElasticNet) Score(x *mat.Dense, y []float64) float64 {
	return R2(y, e.Predict(x))
}

// ScoreIn is Score on workspace-backed prediction buffers (see
// PredictIn); bit-identical to Score.
func (e *ElasticNet) ScoreIn(ws *Workspace, x *mat.Dense, y []float64) float64 {
	return R2(y, e.PredictIn(ws, x))
}

// Coef returns a copy of the fitted coefficients (in the fitting space:
// standardized when Standardize is set, centered-raw otherwise).
func (e *ElasticNet) Coef() []float64 { return append([]float64(nil), e.coef...) }

// Iterations returns the number of coordinate-descent sweeps performed.
func (e *ElasticNet) Iterations() int { return e.iters }
