// Package ml implements the three data-mining algorithms of Table 1 from
// scratch on the internal/mat kernel: elastic-net regression (cyclic
// coordinate descent), principal component analysis (covariance + Jacobi
// eigendecomposition), and k-nearest-neighbors classification — the
// counterparts of the Scikit-Learn models the paper's evaluation uses
// [21].
package ml

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
)

// ElasticNet is a linear regression model with combined L1/L2
// regularization, fit by cyclic coordinate descent on standardized
// features:
//
//	min_b (1/2n)||y - Xb||^2 + Alpha*(L1Ratio*||b||_1 + (1-L1Ratio)/2*||b||^2)
//
// matching Scikit-Learn's parameterization.
type ElasticNet struct {
	// Alpha is the overall regularization strength (default 0.01).
	Alpha float64
	// L1Ratio mixes L1 vs L2 (1 = lasso, 0 = ridge; default 0.5).
	L1Ratio float64
	// MaxIter bounds the coordinate-descent sweeps (default 300).
	MaxIter int
	// Tol stops iteration when the largest coefficient move in a sweep
	// falls below it (default 1e-6).
	Tol float64
	// Standardize selects whether features are scaled to zero mean / unit
	// variance before fitting. Scikit-Learn's ElasticNet — the paper's
	// implementation [21] — fits on raw features (only the intercept is
	// centered), so the Fig. 7 experiments leave this false. Coordinate
	// descent handles raw scales via per-column norms either way.
	Standardize bool

	coef      []float64
	intercept float64
	scaler    *mat.Standardizer
	iters     int
}

// NewElasticNet returns a model with the default hyperparameters on raw
// features (Scikit-Learn-compatible behaviour).
func NewElasticNet() *ElasticNet {
	return &ElasticNet{Alpha: 0.01, L1Ratio: 0.5, MaxIter: 300, Tol: 1e-6}
}

// Fit learns the coefficients from the training set. It standardizes X
// internally and centers y; Predict applies the same transform.
func (e *ElasticNet) Fit(x *mat.Dense, y []float64) error {
	return e.FitIn(nil, x, y)
}

// FitIn is Fit backed by a reusable workspace: every training buffer
// (standardized copy, residual, coefficients, column norms) comes from
// ws, so a warm workspace makes repeated fits allocation-free. The
// result is bit-identical to Fit. The fitted model borrows ws (see
// Workspace); a nil ws allocates fresh buffers.
func (e *ElasticNet) FitIn(ws *Workspace, x *mat.Dense, y []float64) error {
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	if n != len(y) {
		return fmt.Errorf("ml: X rows %d != y length %d", n, len(y))
	}
	if n < 2 {
		return fmt.Errorf("ml: need at least 2 samples, have %d", n)
	}
	// Defaults stay local: Fit must not write hyperparameters back into
	// the receiver (a config struct shared across trials would be
	// rewritten mid-experiment).
	maxIter := e.MaxIter
	if maxIter <= 0 {
		maxIter = 300
	}
	tol := e.Tol
	if tol <= 0 {
		tol = 1e-6
	}
	// Scikit-compatible fit_intercept behaviour when not standardizing:
	// center the columns but keep their raw scale.
	e.scaler = ws.fitScaler(x, e.Standardize)
	ws.z = e.scaler.ApplyInto(mat.Reshape(ws.z, n, d), x)
	z := ws.z

	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	r := floats(&ws.resid, n) // residual y - Zb (centered)
	for i := range r {
		r[i] = y[i] - yMean
	}

	b := floats(&ws.coef, d)
	clear(b)
	nf := float64(n)
	l1 := e.Alpha * e.L1Ratio
	l2 := e.Alpha * (1 - e.L1Ratio)

	// Precompute column squared norms / n.
	colSq := floats(&ws.colSq, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			v := z.At(i, j)
			s += v * v
		}
		colSq[j] = s / nf
	}

	for it := 0; it < maxIter; it++ {
		maxMove := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = (1/n) * x_j . (r + x_j*b_j)
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += z.At(i, j) * r[i]
			}
			rho = rho/nf + colSq[j]*b[j]
			newB := softThreshold(rho, l1) / (colSq[j] + l2)
			if delta := newB - b[j]; delta != 0 {
				for i := 0; i < n; i++ {
					r[i] -= delta * z.At(i, j)
				}
				if m := math.Abs(delta); m > maxMove {
					maxMove = m
				}
				b[j] = newB
			}
		}
		e.iters = it + 1
		if maxMove < tol {
			break
		}
	}
	e.coef = b
	e.intercept = yMean
	return nil
}

func softThreshold(v, t float64) float64 {
	switch {
	case v > t:
		return v - t
	case v < -t:
		return v + t
	default:
		return 0
	}
}

// Predict returns the fitted values for x. Fit must have been called.
func (e *ElasticNet) Predict(x *mat.Dense) []float64 {
	return e.PredictIn(nil, x)
}

// PredictIn is Predict backed by a reusable workspace: the standardized
// copy of x and the output vector come from ws, so a warm workspace
// predicts allocation-free. The returned slice aliases ws and stays
// valid until the next PredictIn/ScoreIn on it. A nil ws allocates
// fresh buffers.
func (e *ElasticNet) PredictIn(ws *Workspace, x *mat.Dense) []float64 {
	if e.coef == nil {
		panic("ml: ElasticNet.Predict before Fit")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	ws.zEval = e.scaler.ApplyInto(mat.Reshape(ws.zEval, n, d), x)
	z := ws.zEval
	out := floats(&ws.preds, n)
	for i := 0; i < n; i++ {
		out[i] = e.intercept + mat.Dot(z.RawRow(i), e.coef)
	}
	return out
}

// Score returns the coefficient of determination R² on (x, y), the
// quality metric of the Elasticnet row in Table 1.
func (e *ElasticNet) Score(x *mat.Dense, y []float64) float64 {
	return R2(y, e.Predict(x))
}

// ScoreIn is Score on workspace-backed prediction buffers (see
// PredictIn); bit-identical to Score.
func (e *ElasticNet) ScoreIn(ws *Workspace, x *mat.Dense, y []float64) float64 {
	return R2(y, e.PredictIn(ws, x))
}

// Coef returns a copy of the fitted coefficients (in the fitting space:
// standardized when Standardize is set, centered-raw otherwise).
func (e *ElasticNet) Coef() []float64 { return append([]float64(nil), e.coef...) }

// Iterations returns the number of coordinate-descent sweeps performed.
func (e *ElasticNet) Iterations() int { return e.iters }
