package ml

import "fmt"

// R2 returns the coefficient of determination of predictions against
// ground truth: 1 - SS_res/SS_tot. It can be negative for models worse
// than predicting the mean — exactly what heavy memory corruption
// produces in Fig. 7a.
func R2(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) {
		panic(fmt.Sprintf("ml: R2 length mismatch %d vs %d", len(yTrue), len(yPred)))
	}
	if len(yTrue) == 0 {
		panic("ml: R2 of empty input")
	}
	mean := 0.0
	for _, v := range yTrue {
		mean += v
	}
	mean /= float64(len(yTrue))
	ssRes, ssTot := 0.0, 0.0
	for i := range yTrue {
		r := yTrue[i] - yPred[i]
		ssRes += r * r
		d := yTrue[i] - mean
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Accuracy returns the fraction of exact label matches.
func Accuracy(yTrue, yPred []float64) float64 {
	if len(yTrue) != len(yPred) {
		panic(fmt.Sprintf("ml: Accuracy length mismatch %d vs %d", len(yTrue), len(yPred)))
	}
	if len(yTrue) == 0 {
		panic("ml: Accuracy of empty input")
	}
	hits := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			hits++
		}
	}
	return float64(hits) / float64(len(yTrue))
}

// NormalizeQuality maps a raw metric to the [0, 1] normalized quality of
// Fig. 7: the faulty-run metric over the fault-free metric, clamped to
// [0, 1] (corruption can drive R² negative; quality cannot exceed the
// fault-free reference by definition of the normalization).
func NormalizeQuality(faulty, clean float64) float64 {
	if clean <= 0 {
		panic(fmt.Sprintf("ml: non-positive clean reference metric %g", clean))
	}
	q := faulty / clean
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}
