package ml

import (
	"math"
	"testing"

	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

func TestR2KnownValues(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Errorf("perfect prediction R² = %g", got)
	}
	// Predicting the mean gives 0.
	if got := R2(y, []float64{2.5, 2.5, 2.5, 2.5}); math.Abs(got) > 1e-12 {
		t.Errorf("mean prediction R² = %g", got)
	}
	// Terrible prediction is negative.
	if got := R2(y, []float64{4, 3, 2, 1}); got >= 0 {
		t.Errorf("anti-prediction R² = %g, want negative", got)
	}
	// Constant truth conventions.
	if got := R2([]float64{2, 2}, []float64{2, 2}); got != 1 {
		t.Errorf("constant-exact R² = %g", got)
	}
	if got := R2([]float64{2, 2}, []float64{3, 3}); got != 0 {
		t.Errorf("constant-miss R² = %g", got)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]float64{1, 2, 3}, []float64{1, 2, 3}); got != 1 {
		t.Errorf("accuracy %g", got)
	}
	if got := Accuracy([]float64{1, 2, 3, 4}, []float64{1, 0, 3, 0}); got != 0.5 {
		t.Errorf("accuracy %g", got)
	}
}

func TestNormalizeQuality(t *testing.T) {
	if NormalizeQuality(0.3, 0.6) != 0.5 {
		t.Error("ratio wrong")
	}
	if NormalizeQuality(-2, 0.5) != 0 {
		t.Error("negative metric should clamp to 0")
	}
	if NormalizeQuality(0.9, 0.6) != 1 {
		t.Error("above-reference should clamp to 1")
	}
}

func TestElasticNetRecoversPlantedModel(t *testing.T) {
	// y = 3*x0 - 2*x1 + noise, x2..x4 irrelevant: the net must find the
	// planted coefficients (in standardized space, up to scaling) and
	// score well out of sample.
	rng := stats.NewRand(4)
	n, d := 400, 5
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = 3*x.At(i, 0) - 2*x.At(i, 1) + 0.3*rng.NormFloat64()
	}
	en := NewElasticNet()
	en.Alpha = 0.001
	if err := en.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := en.Coef()
	if math.Abs(coef[0]-3) > 0.15 || math.Abs(coef[1]+2) > 0.15 {
		t.Errorf("planted coefficients not recovered: %v", coef[:2])
	}
	for j := 2; j < d; j++ {
		if math.Abs(coef[j]) > 0.1 {
			t.Errorf("irrelevant coef %d = %g", j, coef[j])
		}
	}
	// Held-out score.
	xt := mat.NewDense(100, d)
	yt := make([]float64, 100)
	for i := 0; i < 100; i++ {
		for j := 0; j < d; j++ {
			xt.Set(i, j, rng.NormFloat64())
		}
		yt[i] = 3*xt.At(i, 0) - 2*xt.At(i, 1) + 0.3*rng.NormFloat64()
	}
	if s := en.Score(xt, yt); s < 0.95 {
		t.Errorf("held-out R² = %.3f, want > 0.95", s)
	}
}

func TestElasticNetL1Sparsity(t *testing.T) {
	// Strong L1 must zero out noise coefficients entirely.
	rng := stats.NewRand(6)
	n, d := 200, 10
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = 5*x.At(i, 0) + 0.5*rng.NormFloat64()
	}
	en := &ElasticNet{Alpha: 0.5, L1Ratio: 1.0, MaxIter: 500, Tol: 1e-7}
	if err := en.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	coef := en.Coef()
	zeros := 0
	for j := 1; j < d; j++ {
		if coef[j] == 0 {
			zeros++
		}
	}
	if zeros < d-3 {
		t.Errorf("lasso kept %d nonzero noise coefficients", d-1-zeros)
	}
	if coef[0] < 3 {
		t.Errorf("signal coefficient shrunk to %g", coef[0])
	}
}

func TestElasticNetValidation(t *testing.T) {
	en := NewElasticNet()
	x := mat.NewDense(3, 2)
	if err := en.Fit(x, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	one := mat.NewDense(1, 2)
	if err := en.Fit(one, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
}

func TestElasticNetOnWine(t *testing.T) {
	// End-to-end on the synthetic wine set: clean R² must land in the
	// regime of the real dataset (≈0.3-0.5 for linear models).
	d := dataset.Wine(1)
	train, test := d.Split(0.8, 1)
	en := NewElasticNet()
	if err := en.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	r2 := en.Score(test.X, test.Y)
	if r2 < 0.2 || r2 > 0.7 {
		t.Errorf("wine R² = %.3f outside the plausible regime [0.2, 0.7]", r2)
	}
}

func TestPCADiagonalCovariance(t *testing.T) {
	// Independent features with very different variances: the first
	// component must align with the high-variance feature... after
	// standardization all variances are 1, so instead verify on
	// correlated data that 1 component explains most variance.
	rng := stats.NewRand(8)
	n := 300
	x := mat.NewDense(n, 3)
	for i := 0; i < n; i++ {
		base := rng.NormFloat64()
		x.Set(i, 0, base+0.05*rng.NormFloat64())
		x.Set(i, 1, base+0.05*rng.NormFloat64())
		x.Set(i, 2, base+0.05*rng.NormFloat64())
	}
	p := NewPCA(1)
	if err := p.Fit(x); err != nil {
		t.Fatal(err)
	}
	if evr := p.ExplainedVarianceRatio(); evr < 0.95 {
		t.Errorf("1 component explains %.3f of rank-1 data", evr)
	}
	if ev := p.ExplainedVarianceOn(x); ev < 0.95 {
		t.Errorf("on-sample explained variance %.3f", ev)
	}
}

func TestPCAExplainedVarianceOnHeldOut(t *testing.T) {
	// On the Madelon-like data the informative+redundant structure means
	// a handful of components capture much more than chance.
	d := dataset.Madelon(3, dataset.MadelonParams{
		Samples: 600, Informative: 5, Redundant: 15, Probes: 30, ClusterStd: 1,
	})
	train, test := d.Split(0.8, 2)
	p := NewPCA(10)
	if err := p.Fit(train.X); err != nil {
		t.Fatal(err)
	}
	ev := p.ExplainedVarianceOn(test.X)
	chance := 10.0 / 50.0 // k/d for isotropic data
	if ev < chance+0.15 {
		t.Errorf("explained variance %.3f barely above chance %.3f", ev, chance)
	}
	if ev > 1 {
		t.Errorf("explained variance %.3f > 1", ev)
	}
}

func TestPCATransformShape(t *testing.T) {
	d := dataset.Madelon(3, dataset.MadelonParams{
		Samples: 100, Informative: 5, Redundant: 5, Probes: 10, ClusterStd: 1,
	})
	p := NewPCA(4)
	if err := p.Fit(d.X); err != nil {
		t.Fatal(err)
	}
	z := p.Transform(d.X)
	r, c := z.Dims()
	if r != 100 || c != 4 {
		t.Errorf("transform shape %dx%d", r, c)
	}
	// Eigenvalues reports the retained top-k spectrum; the full
	// eigenvalue sum survives as the covariance trace.
	if len(p.Eigenvalues()) != 4 {
		t.Errorf("eigenvalue count %d, want the 4 retained", len(p.Eigenvalues()))
	}
	if tv := p.TotalVariance(); tv <= 0 {
		t.Errorf("total variance %g, want positive", tv)
	}
}

func TestPCAValidation(t *testing.T) {
	p := NewPCA(0)
	if err := p.Fit(mat.NewDense(10, 3)); err == nil {
		t.Error("0 components accepted")
	}
	p = NewPCA(5)
	if err := p.Fit(mat.NewDense(10, 3)); err == nil {
		t.Error("components > features accepted")
	}
}

func TestKNNSeparatedClusters(t *testing.T) {
	rng := stats.NewRand(10)
	n := 200
	x := mat.NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := float64(i % 2)
		y[i] = cls
		x.Set(i, 0, cls*10+rng.NormFloat64())
		x.Set(i, 1, -cls*10+rng.NormFloat64())
	}
	k := NewKNN(5)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if s := k.Score(x, y); s != 1 {
		t.Errorf("separated clusters score %.3f", s)
	}
}

func TestKNNTieBreakDeterministic(t *testing.T) {
	// k=2 with one neighbor of each class: the smaller label must win.
	x := mat.FromRows([][]float64{{0}, {2}})
	y := []float64{1, 0}
	k := NewKNN(2)
	if err := k.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	q := mat.FromRows([][]float64{{1}})
	if got := k.Predict(q)[0]; got != 0 {
		t.Errorf("tie broken toward %g, want 0", got)
	}
}

func TestKNNValidation(t *testing.T) {
	k := NewKNN(5)
	if err := k.Fit(mat.NewDense(3, 2), []float64{1, 2, 3}); err == nil {
		t.Error("n < K accepted")
	}
	k = NewKNN(0)
	if err := k.Fit(mat.NewDense(3, 2), []float64{1, 2, 3}); err == nil {
		t.Error("K=0 accepted")
	}
}

func TestKNNOnHAR(t *testing.T) {
	// Clean-score regime check for the Fig. 7c reference.
	d := dataset.HAR(7, dataset.HARParams{WindowsPerClass: 120, WindowLen: 128, SampleRate: 32})
	train, test := d.Split(0.8, 3)
	k := NewKNN(5)
	if err := k.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	// The generator deliberately overlaps classes so the full-size clean
	// score sits near 0.9 (the Fig. 7c regime); this reduced-size split
	// lands a little lower.
	if s := k.Score(test.X, test.Y); s < 0.75 {
		t.Errorf("HAR clean accuracy %.3f, want > 0.75", s)
	}
}
