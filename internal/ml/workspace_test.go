package ml

import (
	"math"
	"math/rand"
	"testing"

	"faultmem/internal/mat"
)

// corrupt returns a noisy copy of x, standing in for one Monte-Carlo
// trial's fault-corrupted training matrix: each trial sees different
// data, so buffer reuse across trials is actually exercised.
func corrupt(rng *rand.Rand, x *mat.Dense) *mat.Dense {
	n, d := x.Dims()
	out := x.Clone()
	for k := 0; k < n*d/10+1; k++ {
		out.Set(rng.Intn(n), rng.Intn(d), rng.NormFloat64()*10)
	}
	return out
}

func wsTestData(seed int64, n, d int) (*mat.Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := mat.NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y[i] = float64(rng.Intn(4))
	}
	return x, y
}

func sameFloats(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: %g vs %g (not bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestFitInOracle pins the workspace contract for all three models: a
// warm workspace reused across trials with different corrupted training
// matrices produces bit-identical models and scores to the fresh Fit
// path.
func TestFitInOracle(t *testing.T) {
	xTrain, yTrain := wsTestData(1, 120, 8)
	xTest, yTest := wsTestData(2, 40, 8)
	rng := rand.New(rand.NewSource(3))
	var ws Workspace // one warm workspace across every trial and model
	for trial := 0; trial < 5; trial++ {
		xc := corrupt(rng, xTrain)
		for _, standardize := range []bool{false, true} {
			// Elastic net: coefficients, intercept, score.
			fresh := NewElasticNet()
			fresh.Standardize = standardize
			if err := fresh.Fit(xc, yTrain); err != nil {
				t.Fatal(err)
			}
			warm := NewElasticNet()
			warm.Standardize = standardize
			if err := warm.FitIn(&ws, xc, yTrain); err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "ElasticNet coef", warm.Coef(), fresh.Coef())
			if got, want := warm.ScoreIn(&ws, xTest, yTest), fresh.Score(xTest, yTest); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d: ElasticNet ScoreIn %g vs Score %g", trial, got, want)
			}

			// PCA: eigenvalues, explained variance on held-out data.
			pFresh := NewPCA(4)
			pFresh.Standardize = standardize
			if err := pFresh.Fit(xc); err != nil {
				t.Fatal(err)
			}
			pWarm := NewPCA(4)
			pWarm.Standardize = standardize
			if err := pWarm.FitIn(&ws, xc); err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "PCA eigenvalues", pWarm.Eigenvalues(), pFresh.Eigenvalues())
			if got, want := pWarm.ExplainedVarianceOnIn(&ws, xTest), pFresh.ExplainedVarianceOn(xTest); math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d: PCA ExplainedVarianceOnIn %g vs %g", trial, got, want)
			}

			// KNN: predictions and score.
			kFresh := NewKNN(5)
			kFresh.Standardize = standardize
			if err := kFresh.Fit(xc, yTrain); err != nil {
				t.Fatal(err)
			}
			want := kFresh.Predict(xTest)
			kWarm := NewKNN(5)
			kWarm.Standardize = standardize
			if err := kWarm.FitIn(&ws, xc, yTrain); err != nil {
				t.Fatal(err)
			}
			sameFloats(t, "KNN predictions", kWarm.PredictIn(&ws, xTest), want)
			if got, wantS := kWarm.ScoreIn(&ws, xTest, yTest), kFresh.Score(xTest, yTest); math.Float64bits(got) != math.Float64bits(wantS) {
				t.Fatalf("trial %d: KNN ScoreIn %g vs Score %g", trial, got, wantS)
			}
		}
	}
}

// TestFitInZeroAlloc pins the tentpole claim: a warm workspace fits and
// scores all three models without touching the allocator.
func TestFitInZeroAlloc(t *testing.T) {
	xTrain, yTrain := wsTestData(4, 100, 6)
	xTest, yTest := wsTestData(5, 30, 6)
	var ws Workspace

	en := NewElasticNet()
	if err := en.FitIn(&ws, xTrain, yTrain); err != nil {
		t.Fatal(err)
	}
	en.ScoreIn(&ws, xTest, yTest)
	if a := testing.AllocsPerRun(10, func() {
		if err := en.FitIn(&ws, xTrain, yTrain); err != nil {
			t.Error(err)
		}
	}); a != 0 {
		t.Errorf("warm ElasticNet.FitIn allocates %v/run, want 0", a)
	}
	if a := testing.AllocsPerRun(10, func() { en.ScoreIn(&ws, xTest, yTest) }); a != 0 {
		t.Errorf("warm ElasticNet.ScoreIn allocates %v/run, want 0", a)
	}

	pca := NewPCA(3)
	if err := pca.FitIn(&ws, xTrain); err != nil {
		t.Fatal(err)
	}
	pca.ExplainedVarianceOnIn(&ws, xTest)
	if a := testing.AllocsPerRun(10, func() {
		if err := pca.FitIn(&ws, xTrain); err != nil {
			t.Error(err)
		}
	}); a != 0 {
		t.Errorf("warm PCA.FitIn allocates %v/run, want 0", a)
	}
	if a := testing.AllocsPerRun(10, func() { pca.ExplainedVarianceOnIn(&ws, xTest) }); a != 0 {
		t.Errorf("warm PCA.ExplainedVarianceOnIn allocates %v/run, want 0", a)
	}

	knn := NewKNN(5)
	if err := knn.FitIn(&ws, xTrain, yTrain); err != nil {
		t.Fatal(err)
	}
	knn.ScoreIn(&ws, xTest, yTest)
	if a := testing.AllocsPerRun(10, func() {
		if err := knn.FitIn(&ws, xTrain, yTrain); err != nil {
			t.Error(err)
		}
	}); a != 0 {
		t.Errorf("warm KNN.FitIn allocates %v/run, want 0", a)
	}
	if a := testing.AllocsPerRun(10, func() { knn.ScoreIn(&ws, xTest, yTest) }); a != 0 {
		t.Errorf("warm KNN.ScoreIn allocates %v/run, want 0", a)
	}
}

// TestElasticNetFitKeepsHyperparameters pins the config-struct fix: Fit
// must not write its MaxIter/Tol defaults back into the receiver, so a
// shared config struct is not rewritten mid-experiment.
func TestElasticNetFitKeepsHyperparameters(t *testing.T) {
	x, y := wsTestData(6, 50, 4)
	en := &ElasticNet{Alpha: 0.01, L1Ratio: 0.5} // MaxIter/Tol unset
	if err := en.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if en.MaxIter != 0 || en.Tol != 0 {
		t.Errorf("Fit mutated hyperparameters: MaxIter=%d Tol=%g, want 0/0", en.MaxIter, en.Tol)
	}
	if en.Iterations() < 1 {
		t.Error("defaults not applied internally")
	}
	// And the unset defaults behave identically to the explicit ones.
	explicit := &ElasticNet{Alpha: 0.01, L1Ratio: 0.5, MaxIter: 300, Tol: 1e-6}
	if err := explicit.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	sameFloats(t, "default-vs-explicit coef", en.Coef(), explicit.Coef())
}
