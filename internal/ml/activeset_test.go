package ml

import (
	"math"
	"testing"

	"faultmem/internal/dataset"
	"faultmem/internal/mat"
	"faultmem/internal/stats"
)

// plainCD is the pre-PR elastic-net solver: cyclic coordinate descent
// over every coordinate, every sweep, on the residual recurrence. It
// is the convergence oracle for the Gram/active-set fit.
func plainCD(z *mat.Dense, y []float64, alpha, l1Ratio, tol float64, maxIter int) (coef []float64, intercept float64) {
	n, d := z.Dims()
	yMean := 0.0
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	r := make([]float64, n)
	for i := range r {
		r[i] = y[i] - yMean
	}
	b := make([]float64, d)
	nf := float64(n)
	l1 := alpha * l1Ratio
	l2 := alpha * (1 - l1Ratio)
	colSq := make([]float64, d)
	for j := 0; j < d; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			v := z.At(i, j)
			s += v * v
		}
		colSq[j] = s / nf
	}
	for it := 0; it < maxIter; it++ {
		maxMove := 0.0
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			rho := 0.0
			for i := 0; i < n; i++ {
				rho += z.At(i, j) * r[i]
			}
			rho = rho/nf + colSq[j]*b[j]
			newB := softThreshold(rho, l1) / (colSq[j] + l2)
			if delta := newB - b[j]; delta != 0 {
				for i := 0; i < n; i++ {
					r[i] -= delta * z.At(i, j)
				}
				if m := math.Abs(delta); m > maxMove {
					maxMove = m
				}
				b[j] = newB
			}
		}
		if maxMove < tol {
			break
		}
	}
	return b, yMean
}

// center replicates the raw-feature fit preprocessing (column
// centering at unit scale) so plainCD sees the same design matrix as
// Fit.
func center(x *mat.Dense) *mat.Dense {
	s := &mat.Standardizer{Mean: mat.ColMeans(x), Std: make([]float64, 0)}
	_, d := x.Dims()
	std := make([]float64, d)
	for j := range std {
		std[j] = 1
	}
	s.Std = std
	return s.Apply(x)
}

// TestElasticNetActiveSetMatchesPlainCD pins the active-set/Gram fit
// against the plain cyclic-descent oracle: both terminate on the same
// full-pass stationarity condition, so they must land on the same
// optimum within a small multiple of the tolerance — across L1-only,
// L2-only, and mixed penalties, and on both solver representations
// (Gram for n >= d, residual for d > n).
func TestElasticNetActiveSetMatchesPlainCD(t *testing.T) {
	rng := stats.NewRand(21)
	cases := []struct {
		n, d           int
		alpha, l1Ratio float64
	}{
		{400, 10, 0.01, 0.5},
		{300, 25, 0.5, 1.0}, // lasso with real sparsity
		{200, 8, 0.1, 0.0},  // ridge: every coordinate active
		{30, 60, 0.2, 0.7},  // d > n: residual-mode active set
		{500, 40, 0.05, 0.9},
	}
	for ci, c := range cases {
		x := mat.NewDense(c.n, c.d)
		y := make([]float64, c.n)
		for i := 0; i < c.n; i++ {
			for j := 0; j < c.d; j++ {
				x.Set(i, j, rng.NormFloat64())
			}
			y[i] = 3*x.At(i, 0) - 2*x.At(i, 1) + 0.5*x.At(i, 2) + 0.3*rng.NormFloat64()
		}
		const tol = 1e-9
		en := &ElasticNet{Alpha: c.alpha, L1Ratio: c.l1Ratio, MaxIter: 20000, Tol: tol}
		if err := en.Fit(x, y); err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}
		got := en.Coef()
		want, wantIntercept := plainCD(center(x), y, c.alpha, c.l1Ratio, tol, 20000)
		if math.Abs(en.intercept-wantIntercept) > 1e-12 {
			t.Errorf("case %d: intercept %g, oracle %g", ci, en.intercept, wantIntercept)
		}
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-6 {
				t.Errorf("case %d: coef %d = %.12g, oracle %.12g", ci, j, got[j], want[j])
			}
			// Exact-zero sparsity pattern must survive the active set.
			if (got[j] == 0) != (want[j] == 0) && math.Abs(want[j]) > 1e-8 {
				t.Errorf("case %d: coef %d zero-pattern mismatch (%g vs %g)", ci, j, got[j], want[j])
			}
		}
	}
}

// TestElasticNetActiveSetOnWineMatchesPlainCD runs the oracle
// comparison on the actual Fig. 7a workload (wine regression at the
// shipped hyperparameters and tolerance).
func TestElasticNetActiveSetOnWineMatchesPlainCD(t *testing.T) {
	d := dataset.Wine(1)
	train, _ := d.Split(0.8, 1)
	en := NewElasticNet()
	if err := en.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	got := en.Coef()
	want, _ := plainCD(center(train.X), train.Y, en.Alpha, en.L1Ratio, 1e-6, 300)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-4 {
			t.Errorf("wine coef %d = %.9g, oracle %.9g", j, got[j], want[j])
		}
	}
}

// BenchmarkElasticNetFit measures the shipped Gram/active-set fit on
// the Fig. 7a wine geometry; BenchmarkElasticNetFitPlainCD is the
// pre-PR solver on the same data — the before/after pair of the
// README's kernel table.
func BenchmarkElasticNetFit(b *testing.B) {
	d := dataset.Wine(1)
	train, _ := d.Split(0.8, 1)
	en := NewElasticNet()
	var ws Workspace
	if err := en.FitIn(&ws, train.X, train.Y); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := en.FitIn(&ws, train.X, train.Y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElasticNetFitPlainCD(b *testing.B) {
	d := dataset.Wine(1)
	train, _ := d.Split(0.8, 1)
	z := center(train.X)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plainCD(z, train.Y, 0.01, 0.5, 1e-6, 300)
	}
}

// TestPCATopKMatchesFullEigen pins the PCA wiring of the top-k solver
// against a full-spectrum reference computed directly with
// mat.EigenSym: explained-variance ratio, held-out explained variance,
// and the retained eigenvalues must agree to 1e-9.
func TestPCATopKMatchesFullEigen(t *testing.T) {
	d := dataset.Madelon(3, dataset.DefaultMadelon())
	train, test := d.Split(0.8, 2)
	k := 10
	p := NewPCA(k)
	if err := p.Fit(train.X); err != nil {
		t.Fatal(err)
	}

	// Full-spectrum reference on the same centered data.
	z := center(train.X)
	cov := mat.Covariance(z)
	vals, vecs := mat.EigenSym(cov)
	scale := math.Max(vals[0], 1)
	for i, v := range p.Eigenvalues() {
		if math.Abs(v-vals[i]) > 1e-9*scale {
			t.Errorf("eigenvalue %d = %.15g, full %.15g", i, v, vals[i])
		}
	}

	top, total := 0.0, 0.0
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		if i < k {
			top += v
		}
		total += v
	}
	if want := top / total; math.Abs(p.ExplainedVarianceRatio()-want) > 1e-9 {
		t.Errorf("explained variance ratio %.12g, full %.12g", p.ExplainedVarianceRatio(), want)
	}

	// Held-out explained variance against the full-eigen subspace.
	zt := center2(test.X, mat.ColMeans(train.X))
	nTest, dims := zt.Dims()
	totalE, kept := 0.0, 0.0
	for i := 0; i < nTest; i++ {
		row := zt.RawRow(i)
		for _, v := range row {
			totalE += v * v
		}
		for j := 0; j < k; j++ {
			s := 0.0
			for a := 0; a < dims; a++ {
				s += row[a] * vecs.At(a, j)
			}
			kept += s * s
		}
	}
	// Madelon's bulk eigenvalues are near-degenerate, so the retained
	// subspace is only defined to the bulk gap: the captured held-out
	// energy agrees with the full decomposition to the square of the
	// residual subspace angle (~1e-8 here), far below the Fig. 7
	// Monte-Carlo noise, not to the 1e-9 of the well-conditioned
	// eigenvalue checks above.
	want := kept / totalE
	if got := p.ExplainedVarianceOn(test.X); math.Abs(got-want) > 1e-6 {
		t.Errorf("held-out explained variance %.12g, full-eigen %.12g", got, want)
	}
}

// center2 centers x by the provided means (the train-set transform
// applied to held-out data).
func center2(x *mat.Dense, mean []float64) *mat.Dense {
	std := make([]float64, len(mean))
	for j := range std {
		std[j] = 1
	}
	s := &mat.Standardizer{Mean: mean, Std: std}
	return s.Apply(x)
}
