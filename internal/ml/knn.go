package ml

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
)

// KNN is a k-nearest-neighbors classifier with Euclidean distance and
// majority voting (ties broken toward the smallest label, matching a
// stable deterministic rule).
type KNN struct {
	// K is the neighbor count (default 5).
	K int
	// Standardize selects whether features are scaled to zero mean / unit
	// variance before distance computation. Scikit-Learn's
	// KNeighborsClassifier — the paper's implementation [21] — computes
	// distances on raw features, so the Fig. 7 experiments leave this
	// false; NewKNN defaults to false accordingly.
	Standardize bool

	scaler *mat.Standardizer
	train  *mat.Dense
	labels []float64
}

// NewKNN returns a classifier with k neighbors on raw features
// (Scikit-Learn-compatible behaviour).
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit stores the training set.
func (m *KNN) Fit(x *mat.Dense, y []float64) error {
	return m.FitIn(nil, x, y)
}

// FitIn is Fit backed by a reusable workspace: the cloned (or
// standardized) training matrix and the label copy come from ws, so a
// warm workspace makes repeated fits allocation-free. The result is
// bit-identical to Fit. The fitted model borrows ws (see Workspace); a
// nil ws allocates fresh buffers.
func (m *KNN) FitIn(ws *Workspace, x *mat.Dense, y []float64) error {
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	if n != len(y) {
		return fmt.Errorf("ml: X rows %d != y length %d", n, len(y))
	}
	if m.K < 1 {
		return fmt.Errorf("ml: K must be positive, got %d", m.K)
	}
	if n < m.K {
		return fmt.Errorf("ml: %d training samples < K=%d", n, m.K)
	}
	ws.train = mat.Reshape(ws.train, n, d)
	if m.Standardize {
		m.scaler = ws.fitScaler(x, true)
		m.scaler.ApplyInto(ws.train, x)
	} else {
		m.scaler = nil
		ws.train.Copy(x)
	}
	m.train = ws.train
	m.labels = floats(&ws.labels, len(y))
	copy(m.labels, y)
	return nil
}

// Predict classifies each row of x.
func (m *KNN) Predict(x *mat.Dense) []float64 {
	return m.PredictIn(nil, x)
}

// PredictIn is Predict backed by a reusable workspace (standardized
// copy, neighbor buffer, output vector), so a warm workspace predicts
// allocation-free. The returned slice aliases ws and stays valid until
// the next PredictIn/ScoreIn on it. A nil ws allocates fresh buffers.
func (m *KNN) PredictIn(ws *Workspace, x *mat.Dense) []float64 {
	if m.train == nil {
		panic("ml: KNN.Predict before Fit")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	// The blocked scan in predictOne reslices training rows to the
	// query width, so a mismatched query must be rejected here (the
	// per-row SqDist length panic used to catch it implicitly).
	_, qd := x.Dims()
	if _, td := m.train.Dims(); qd != td {
		panic(fmt.Sprintf("ml: KNN query has %d features, trained on %d", qd, td))
	}
	z := x
	if m.scaler != nil {
		n, d := x.Dims()
		ws.zEval = m.scaler.ApplyInto(mat.Reshape(ws.zEval, n, d), x)
		z = ws.zEval
	}
	if cap(ws.neighbors) < m.K {
		ws.neighbors = make([]neighbor, 0, m.K)
	}
	n, _ := z.Dims()
	out := floats(&ws.preds, n)
	i := 0
	// Narrow-feature fast path: at <= 32 columns predictOne's blocked
	// scan takes no early-abandon checkpoints, so nothing is lost by
	// scanning for two queries at once — and each training-row load is
	// amortized across both queries while the eight independent
	// accumulator chains keep the FPU pipelined. Distances accumulate in
	// exactly the same per-pair order, so predictions are bit-identical
	// to the one-query path (pinned by TestKNNPairedMatchesOne).
	if qd <= 32 {
		if cap(ws.neighborsB) < m.K {
			ws.neighborsB = make([]neighbor, 0, m.K)
		}
		for ; i+2 <= n; i += 2 {
			out[i], out[i+1] = m.predictPair(z.RawRow(i), z.RawRow(i+1),
				ws.neighbors[:0], ws.neighborsB[:0])
		}
	}
	for ; i < n; i++ {
		out[i] = m.predictOne(z.RawRow(i), ws.neighbors[:0])
	}
	return out
}

type neighbor struct {
	dist  float64
	label float64
}

// predictOne classifies one query row. best is a zero-length scratch
// buffer with capacity >= K; it holds the K running nearest neighbors
// in ascending distance (equal distances keep earlier training rows
// first, so the kept multiset — and therefore the vote — is fully
// deterministic).
//
// The candidate scan is blocked and exact-pruned, and its predictions
// are bit-identical to a naive full scan (pinned by
// TestKNNPrunedMatchesNaive):
//
//   - Candidates are walked four training rows at a time with four
//     independent distance accumulators. Each row's sum still adds its
//     terms in ascending feature order — exactly SqDist's order — but
//     the four dependency chains pipeline where a single running sum
//     serializes on add latency (~1.7x at the 15-feature HAR
//     geometry, per BenchmarkKNNPredict).
//   - Once K neighbors are held, the accumulation early-abandons
//     against the kth-best distance at 32-column checkpoints. Squared
//     terms only grow the sum, so an abandoned block is one whose four
//     rows the full scan would also have rejected (it rejects on
//     d >= kth-best). Checking every column costs more than it saves
//     at small d (benched), so narrow data like HAR takes no
//     checkpoints at all and wide data pays one branch per 128 terms.
func (m *KNN) predictOne(q []float64, best []neighbor) float64 {
	nTrain, _ := m.train.Dims()
	dl := len(q)
	t := 0
outer:
	for ; t+4 <= nTrain; t += 4 {
		r0 := m.train.RawRow(t)[:dl]
		r1 := m.train.RawRow(t + 1)[:dl]
		r2 := m.train.RawRow(t + 2)[:dl]
		r3 := m.train.RawRow(t + 3)[:dl]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+32 <= dl; j += 32 {
			for jj := j; jj < j+32; jj++ {
				qv := q[jj]
				d0 := qv - r0[jj]
				s0 += d0 * d0
				d1 := qv - r1[jj]
				s1 += d1 * d1
				d2 := qv - r2[jj]
				s2 += d2 * d2
				d3 := qv - r3[jj]
				s3 += d3 * d3
			}
			if j+32 < dl && len(best) == m.K {
				if bd := best[m.K-1].dist; s0 >= bd && s1 >= bd && s2 >= bd && s3 >= bd {
					continue outer
				}
			}
		}
		for ; j < dl; j++ {
			qv := q[j]
			d0 := qv - r0[j]
			s0 += d0 * d0
			d1 := qv - r1[j]
			s1 += d1 * d1
			d2 := qv - r2[j]
			s2 += d2 * d2
			d3 := qv - r3[j]
			s3 += d3 * d3
		}
		best = m.consider(best, s0, t)
		best = m.consider(best, s1, t+1)
		best = m.consider(best, s2, t+2)
		best = m.consider(best, s3, t+3)
	}
	for ; t < nTrain; t++ {
		bound := math.Inf(1)
		if len(best) == m.K {
			bound = best[m.K-1].dist
		}
		d, ok := mat.SqDistBounded(q, m.train.RawRow(t), bound)
		if !ok {
			continue
		}
		best = m.consider(best, d, t)
	}
	return vote(best)
}

// predictPair classifies two query rows in one pass over the training
// matrix (the narrow-feature path of PredictIn). Each of the four
// training rows per block is loaded once and charged against both
// queries; every (query, row) distance still adds its squared terms in
// ascending feature order — exactly SqDist's order — so both results
// are bit-identical to predictOne on the same query. Once both
// K-buffers are full, a single mid-row checkpoint abandons a block
// whose eight partial sums all already exceed their query's kth-best
// distance: squared terms only grow the sums, so every skipped row is
// one consider would have rejected (d >= bound), and the kept neighbor
// multisets — hence the votes — are unchanged.
func (m *KNN) predictPair(qa, qb []float64, bestA, bestB []neighbor) (float64, float64) {
	nTrain, _ := m.train.Dims()
	dl := len(qa)
	qb = qb[:dl] // prove len(qb) == len(qa): drops the qb[j] bounds check
	half := dl / 2
	t := 0
	for ; t+4 <= nTrain; t += 4 {
		r0 := m.train.RawRow(t)[:dl]
		r1 := m.train.RawRow(t + 1)[:dl]
		r2 := m.train.RawRow(t + 2)[:dl]
		r3 := m.train.RawRow(t + 3)[:dl]
		var a0, a1, a2, a3, b0, b1, b2, b3 float64
		j := 0
		if len(bestA) == m.K && len(bestB) == m.K {
			for ; j < half; j++ {
				qav, qbv := qa[j], qb[j]
				r0v, r1v, r2v, r3v := r0[j], r1[j], r2[j], r3[j]
				da0 := qav - r0v
				a0 += da0 * da0
				da1 := qav - r1v
				a1 += da1 * da1
				da2 := qav - r2v
				a2 += da2 * da2
				da3 := qav - r3v
				a3 += da3 * da3
				db0 := qbv - r0v
				b0 += db0 * db0
				db1 := qbv - r1v
				b1 += db1 * db1
				db2 := qbv - r2v
				b2 += db2 * db2
				db3 := qbv - r3v
				b3 += db3 * db3
			}
			ba, bb := bestA[m.K-1].dist, bestB[m.K-1].dist
			if a0 >= ba && a1 >= ba && a2 >= ba && a3 >= ba &&
				b0 >= bb && b1 >= bb && b2 >= bb && b3 >= bb {
				continue
			}
		}
		for ; j < dl; j++ {
			qav, qbv := qa[j], qb[j]
			r0v, r1v, r2v, r3v := r0[j], r1[j], r2[j], r3[j]
			da0 := qav - r0v
			a0 += da0 * da0
			da1 := qav - r1v
			a1 += da1 * da1
			da2 := qav - r2v
			a2 += da2 * da2
			da3 := qav - r3v
			a3 += da3 * da3
			db0 := qbv - r0v
			b0 += db0 * db0
			db1 := qbv - r1v
			b1 += db1 * db1
			db2 := qbv - r2v
			b2 += db2 * db2
			db3 := qbv - r3v
			b3 += db3 * db3
		}
		bestA = m.consider(bestA, a0, t)
		bestA = m.consider(bestA, a1, t+1)
		bestA = m.consider(bestA, a2, t+2)
		bestA = m.consider(bestA, a3, t+3)
		bestB = m.consider(bestB, b0, t)
		bestB = m.consider(bestB, b1, t+1)
		bestB = m.consider(bestB, b2, t+2)
		bestB = m.consider(bestB, b3, t+3)
	}
	for ; t < nTrain; t++ {
		row := m.train.RawRow(t)
		boundA := math.Inf(1)
		if len(bestA) == m.K {
			boundA = bestA[m.K-1].dist
		}
		if d, ok := mat.SqDistBounded(qa, row, boundA); ok {
			bestA = m.consider(bestA, d, t)
		}
		boundB := math.Inf(1)
		if len(bestB) == m.K {
			boundB = bestB[m.K-1].dist
		}
		if d, ok := mat.SqDistBounded(qb, row, boundB); ok {
			bestB = m.consider(bestB, d, t)
		}
	}
	return vote(bestA), vote(bestB)
}

// vote returns the majority label of the kept neighbors, ties broken
// toward the smallest label: count each kept label in place instead of
// building a map.
func vote(best []neighbor) float64 {
	bestLabel, bestVotes := 0.0, -1
	for i := range best {
		v := 0
		for j := range best {
			if best[j].label == best[i].label {
				v++
			}
		}
		if v > bestVotes || (v == bestVotes && best[i].label < bestLabel) {
			bestLabel, bestVotes = best[i].label, v
		}
	}
	return bestLabel
}

// consider offers training row t at squared distance d to the running
// K-nearest buffer, inserting after any equal distances so earlier
// rows win ties (the same deterministic rule as the pre-pruning scan).
func (m *KNN) consider(best []neighbor, d float64, t int) []neighbor {
	if len(best) == m.K {
		if d >= best[m.K-1].dist {
			return best
		}
		best = best[:m.K-1]
	}
	pos := len(best)
	for pos > 0 && best[pos-1].dist > d {
		pos--
	}
	best = append(best, neighbor{})
	copy(best[pos+1:], best[pos:len(best)-1])
	best[pos] = neighbor{d, m.labels[t]}
	return best
}

// Score returns the classification accuracy on (x, y): the "Score"
// quality metric of the KNN row in Table 1.
func (m *KNN) Score(x *mat.Dense, y []float64) float64 {
	return Accuracy(y, m.Predict(x))
}

// ScoreIn is Score on workspace-backed prediction buffers (see
// PredictIn); bit-identical to Score.
func (m *KNN) ScoreIn(ws *Workspace, x *mat.Dense, y []float64) float64 {
	return Accuracy(y, m.PredictIn(ws, x))
}
