package ml

import (
	"fmt"
	"sort"

	"faultmem/internal/mat"
)

// KNN is a k-nearest-neighbors classifier with Euclidean distance and
// majority voting (ties broken toward the smallest label, matching a
// stable deterministic rule).
type KNN struct {
	// K is the neighbor count (default 5).
	K int
	// Standardize selects whether features are scaled to zero mean / unit
	// variance before distance computation. Scikit-Learn's
	// KNeighborsClassifier — the paper's implementation [21] — computes
	// distances on raw features, so the Fig. 7 experiments leave this
	// false; NewKNN defaults to false accordingly.
	Standardize bool

	scaler *mat.Standardizer
	train  *mat.Dense
	labels []float64
}

// NewKNN returns a classifier with k neighbors on raw features
// (Scikit-Learn-compatible behaviour).
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Fit stores the training set.
func (m *KNN) Fit(x *mat.Dense, y []float64) error {
	n, _ := x.Dims()
	if n != len(y) {
		return fmt.Errorf("ml: X rows %d != y length %d", n, len(y))
	}
	if m.K < 1 {
		return fmt.Errorf("ml: K must be positive, got %d", m.K)
	}
	if n < m.K {
		return fmt.Errorf("ml: %d training samples < K=%d", n, m.K)
	}
	if m.Standardize {
		m.scaler = mat.FitStandardizer(x)
		m.train = m.scaler.Apply(x)
	} else {
		m.scaler = nil
		m.train = x.Clone()
	}
	m.labels = append([]float64(nil), y...)
	return nil
}

// Predict classifies each row of x.
func (m *KNN) Predict(x *mat.Dense) []float64 {
	if m.train == nil {
		panic("ml: KNN.Predict before Fit")
	}
	z := x
	if m.scaler != nil {
		z = m.scaler.Apply(x)
	}
	n, _ := z.Dims()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = m.predictOne(z.RawRow(i))
	}
	return out
}

type neighbor struct {
	dist  float64
	label float64
}

func (m *KNN) predictOne(q []float64) float64 {
	// Maintain the K best neighbors by insertion into a small sorted
	// buffer — K is tiny compared to the training size.
	best := make([]neighbor, 0, m.K)
	nTrain, _ := m.train.Dims()
	for t := 0; t < nTrain; t++ {
		d := mat.SqDist(q, m.train.RawRow(t))
		if len(best) < m.K {
			best = append(best, neighbor{d, m.labels[t]})
			if len(best) == m.K {
				sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
			}
			continue
		}
		if d >= best[m.K-1].dist {
			continue
		}
		pos := sort.Search(m.K, func(i int) bool { return best[i].dist > d })
		copy(best[pos+1:], best[pos:m.K-1])
		best[pos] = neighbor{d, m.labels[t]}
	}
	if len(best) < m.K {
		sort.Slice(best, func(a, b int) bool { return best[a].dist < best[b].dist })
	}
	votes := make(map[float64]int, m.K)
	for _, nb := range best {
		votes[nb.label]++
	}
	bestLabel, bestVotes := 0.0, -1
	for label, v := range votes {
		if v > bestVotes || (v == bestVotes && label < bestLabel) {
			bestLabel, bestVotes = label, v
		}
	}
	return bestLabel
}

// Score returns the classification accuracy on (x, y): the "Score"
// quality metric of the KNN row in Table 1.
func (m *KNN) Score(x *mat.Dense, y []float64) float64 {
	return Accuracy(y, m.Predict(x))
}
