package ml

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
)

// PCA is principal component analysis via the covariance matrix and the
// Jacobi symmetric eigensolver.
type PCA struct {
	// Components is the number of principal components to retain.
	Components int
	// Standardize selects correlation-matrix PCA (zero mean / unit
	// variance). Scikit-Learn's PCA — the paper's implementation [21] —
	// only centers the data, so the Fig. 7 experiments leave this false.
	Standardize bool

	scaler  *mat.Standardizer
	vectors *mat.Dense // d x Components, orthonormal columns
	values  []float64  // all d eigenvalues, descending
}

// NewPCA returns a model retaining k components on centered raw features
// (Scikit-Learn-compatible behaviour).
func NewPCA(k int) *PCA { return &PCA{Components: k} }

// Fit learns the principal subspace from the training set.
func (p *PCA) Fit(x *mat.Dense) error {
	return p.FitIn(nil, x)
}

// FitIn is Fit backed by a reusable workspace: the standardized copy,
// covariance matrix, Jacobi rotation scratch, and component matrix all
// come from ws, so a warm workspace makes repeated fits
// allocation-free. The result is bit-identical to Fit. The fitted model
// borrows ws (see Workspace); a nil ws allocates fresh buffers.
func (p *PCA) FitIn(ws *Workspace, x *mat.Dense) error {
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	if n < 2 {
		return fmt.Errorf("ml: PCA needs at least 2 samples, have %d", n)
	}
	if p.Components < 1 || p.Components > d {
		return fmt.Errorf("ml: PCA components %d outside [1,%d]", p.Components, d)
	}
	p.scaler = ws.fitScaler(x, p.Standardize)
	ws.z = p.scaler.ApplyInto(mat.Reshape(ws.z, n, d), x)
	ws.cov = mat.CovarianceInto(mat.Reshape(ws.cov, d, d), ws.z, floats(&ws.covMu, d))
	vals, vecs := mat.EigenSymIn(&ws.eig, ws.cov)
	p.values = vals
	ws.vectors = mat.Reshape(ws.vectors, d, p.Components)
	p.vectors = ws.vectors
	for j := 0; j < p.Components; j++ {
		for i := 0; i < d; i++ {
			p.vectors.Set(i, j, vecs.At(i, j))
		}
	}
	return nil
}

// ExplainedVarianceRatio returns the training-eigenvalue ratio: the sum
// of the retained eigenvalues over the total (negative eigenvalues from
// numerical noise clamp to zero).
func (p *PCA) ExplainedVarianceRatio() float64 {
	if p.values == nil {
		panic("ml: PCA.ExplainedVarianceRatio before Fit")
	}
	top, total := 0.0, 0.0
	for i, v := range p.values {
		if v < 0 {
			v = 0
		}
		if i < p.Components {
			top += v
		}
		total += v
	}
	if total == 0 {
		return 0
	}
	return top / total
}

// ExplainedVarianceOn measures how much of the variance of a held-out
// set the learned subspace captures: 1 - ||Z - VV'Z||² / ||Z||², where Z
// is x standardized by the model's scaler and V the component matrix.
// This is the quality metric of the PCA row in Table 1 as evaluated in
// Fig. 7b: a model trained on fault-corrupted data keeps less of the
// clean test data's variance.
func (p *PCA) ExplainedVarianceOn(x *mat.Dense) float64 {
	return p.ExplainedVarianceOnIn(nil, x)
}

// ExplainedVarianceOnIn is ExplainedVarianceOn backed by a reusable
// workspace (standardized evaluation copy and projection buffer);
// bit-identical to ExplainedVarianceOn. A nil ws allocates fresh
// buffers.
func (p *PCA) ExplainedVarianceOnIn(ws *Workspace, x *mat.Dense) float64 {
	if p.vectors == nil {
		panic("ml: PCA.ExplainedVarianceOn before Fit")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	ws.zEval = p.scaler.ApplyInto(mat.Reshape(ws.zEval, n, d), x)
	z := ws.zEval
	total, kept := 0.0, 0.0
	k := p.Components
	proj := floats(&ws.proj, k)
	for i := 0; i < n; i++ {
		row := z.RawRow(i)
		for j := 0; j < k; j++ {
			s := 0.0
			for a, v := range row {
				s += v * p.vectors.At(a, j)
			}
			proj[j] = s
		}
		for _, v := range row {
			total += v * v
		}
		for _, s := range proj {
			kept += s * s
		}
	}
	if total == 0 {
		return 0
	}
	r := kept / total
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Transform projects x onto the retained components (rows = samples,
// cols = component scores).
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	if p.vectors == nil {
		panic("ml: PCA.Transform before Fit")
	}
	return mat.Mul(p.scaler.Apply(x), p.vectors)
}

// Eigenvalues returns a copy of all eigenvalues in descending order.
func (p *PCA) Eigenvalues() []float64 { return append([]float64(nil), p.values...) }
