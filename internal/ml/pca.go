package ml

import (
	"fmt"
	"math"

	"faultmem/internal/mat"
)

// PCA is principal component analysis via the covariance matrix and the
// top-k symmetric eigensolver (deterministic subspace iteration with a
// Rayleigh–Ritz projection; mat.EigenSymTopK). Only the retained
// Components eigenpairs are computed — the full Jacobi decomposition
// remains the automatic fallback when Components is a large fraction of
// the feature count.
type PCA struct {
	// Components is the number of principal components to retain.
	Components int
	// Standardize selects correlation-matrix PCA (zero mean / unit
	// variance). Scikit-Learn's PCA — the paper's implementation [21] —
	// only centers the data, so the Fig. 7 experiments leave this false.
	Standardize bool
	// Warm optionally seeds the eigensolver's start basis (a row-basis
	// as returned by Workspace.EigenSubspace, typically from a fit on
	// nearby — e.g. clean — data), cutting subspace-iteration rounds.
	// It is read-only to the fit, so one warm basis may be shared across
	// goroutines. The fitted model is bit-identical only for equal Warm
	// values; see mat.EigenSymTopKWarmIn for the determinism contract.
	Warm *mat.Dense

	scaler   *mat.Standardizer
	vectors  *mat.Dense // d x Components, orthonormal columns
	values   []float64  // the Components retained eigenvalues, descending
	totalVar float64    // trace of the covariance = sum of all eigenvalues
}

// NewPCA returns a model retaining k components on centered raw features
// (Scikit-Learn-compatible behaviour).
func NewPCA(k int) *PCA { return &PCA{Components: k} }

// Fit learns the principal subspace from the training set.
func (p *PCA) Fit(x *mat.Dense) error {
	return p.FitIn(nil, x)
}

// FitIn is Fit backed by a reusable workspace: the standardized copy,
// covariance matrix, Jacobi rotation scratch, and component matrix all
// come from ws, so a warm workspace makes repeated fits
// allocation-free. The result is bit-identical to Fit. The fitted model
// borrows ws (see Workspace); a nil ws allocates fresh buffers.
func (p *PCA) FitIn(ws *Workspace, x *mat.Dense) error {
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	if n < 2 {
		return fmt.Errorf("ml: PCA needs at least 2 samples, have %d", n)
	}
	if p.Components < 1 || p.Components > d {
		return fmt.Errorf("ml: PCA components %d outside [1,%d]", p.Components, d)
	}
	p.scaler = ws.fitScaler(x, p.Standardize)
	ws.z = p.scaler.ApplyInto(mat.Reshape(ws.z, n, d), x)
	ws.cov = mat.CovarianceInto(mat.Reshape(ws.cov, d, d), ws.z, floats(&ws.covMu, d))
	// The total variance is the covariance trace — the full eigenvalue
	// sum without the full spectrum, which is what lets the solver stop
	// at the top Components pairs.
	p.totalVar = 0
	for i := 0; i < d; i++ {
		p.totalVar += ws.cov.At(i, i)
	}
	vals, vecs := mat.EigenSymTopKWarmIn(&ws.eig, ws.cov, p.Components, p.Warm)
	p.values = vals
	p.vectors = vecs
	return nil
}

// ExplainedVarianceRatio returns the training-eigenvalue ratio: the sum
// of the retained eigenvalues (negative values from numerical noise
// clamp to zero) over the covariance trace — the total variance, which
// equals the full eigenvalue sum without needing the discarded part of
// the spectrum.
func (p *PCA) ExplainedVarianceRatio() float64 {
	if p.values == nil {
		panic("ml: PCA.ExplainedVarianceRatio before Fit")
	}
	top := 0.0
	for i, v := range p.values {
		if i >= p.Components {
			break
		}
		if v > 0 {
			top += v
		}
	}
	if p.totalVar <= 0 {
		return 0
	}
	r := top / p.totalVar
	if r > 1 {
		r = 1
	}
	return r
}

// ExplainedVarianceOn measures how much of the variance of a held-out
// set the learned subspace captures: 1 - ||Z - VV'Z||² / ||Z||², where Z
// is x standardized by the model's scaler and V the component matrix.
// This is the quality metric of the PCA row in Table 1 as evaluated in
// Fig. 7b: a model trained on fault-corrupted data keeps less of the
// clean test data's variance.
func (p *PCA) ExplainedVarianceOn(x *mat.Dense) float64 {
	return p.ExplainedVarianceOnIn(nil, x)
}

// ExplainedVarianceOnIn is ExplainedVarianceOn backed by a reusable
// workspace (standardized evaluation copy and projection buffer);
// bit-identical to ExplainedVarianceOn. A nil ws allocates fresh
// buffers.
func (p *PCA) ExplainedVarianceOnIn(ws *Workspace, x *mat.Dense) float64 {
	if p.vectors == nil {
		panic("ml: PCA.ExplainedVarianceOn before Fit")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	n, d := x.Dims()
	ws.zEval = p.scaler.ApplyInto(mat.Reshape(ws.zEval, n, d), x)
	z := ws.zEval
	total, kept := 0.0, 0.0
	k := p.Components
	// Project against the transposed component matrix: each component
	// becomes one contiguous row, so the per-sample projections are
	// plain dot products instead of stride-k column walks.
	ws.vecT = mat.TransposeInto(mat.Reshape(ws.vecT, k, d), p.vectors)
	for i := 0; i < n; i++ {
		row := z.RawRow(i)
		for j := 0; j < k; j++ {
			s := 0.0
			vj := ws.vecT.RawRow(j)
			for a, v := range row {
				s += v * vj[a]
			}
			kept += s * s
		}
		for _, v := range row {
			total += v * v
		}
	}
	if total == 0 {
		return 0
	}
	r := kept / total
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	if r > 1 {
		r = 1
	}
	return r
}

// Transform projects x onto the retained components (rows = samples,
// cols = component scores).
func (p *PCA) Transform(x *mat.Dense) *mat.Dense {
	if p.vectors == nil {
		panic("ml: PCA.Transform before Fit")
	}
	return mat.Mul(p.scaler.Apply(x), p.vectors)
}

// Eigenvalues returns a copy of the retained (top-Components)
// eigenvalues in descending order. TotalVariance reports the full
// eigenvalue sum.
func (p *PCA) Eigenvalues() []float64 { return append([]float64(nil), p.values...) }

// TotalVariance returns the trace of the training covariance matrix —
// the sum of all eigenvalues, retained or not.
func (p *PCA) TotalVariance() float64 {
	if p.values == nil {
		panic("ml: PCA.TotalVariance before Fit")
	}
	return p.totalVar
}
