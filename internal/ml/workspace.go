package ml

import (
	"math"

	"faultmem/internal/mat"
)

// Workspace is a reusable scratch bundle for the workspace-backed fit
// and scoring paths (FitIn / ScoreIn / PredictIn /
// ExplainedVarianceOnIn). It bundles every buffer the three Table 1
// models allocate during training — the standardized-matrix copy,
// elastic-net residual/coefficient/column-norm slices, PCA covariance
// and Jacobi rotation scratch, and the KNN neighbor buffer plus cloned
// training matrix — so a Monte-Carlo loop that retrains a model per
// trial (the Fig. 7 engine) reuses one allocation set per goroutine
// instead of reallocating per trial.
//
// The zero value is ready to use. A Workspace is not safe for
// concurrent use; the Fig. 7 engine carries one per shard, next to the
// per-shard memstore.Workspace.
//
// A workspace-backed model borrows the workspace: its fitted state
// (coefficients, components, training set) aliases workspace storage
// and stays valid only until the next FitIn on the same workspace.
// Models that must outlive the workspace should use the plain Fit path.
type Workspace struct {
	// Standardizer backing (shared by all three models — one live
	// workspace-backed model at a time).
	mean, std []float64
	scaler    mat.Standardizer

	// Standardized copies of the training and evaluation matrices.
	z, zEval *mat.Dense

	// Prediction output buffer (PredictIn / ScoreIn).
	preds []float64

	// Elastic net: residual, coefficients, per-column squared norms,
	// plus the Gram-mode buffers (scaled Gram matrix, feature/target
	// correlations, running G*b products) and the active-coordinate
	// list.
	resid, coef, colSq []float64
	gram               *mat.Dense
	zty, gb            []float64
	active             []int

	// PCA: covariance matrix, its column-mean scratch, the eigensolver
	// scratch (Jacobi + top-k subspace blocks; the retained component
	// matrix lives inside it), and the transposed component matrix of
	// ExplainedVarianceOnIn.
	cov   *mat.Dense
	covMu []float64
	eig   mat.EigenScratch
	vecT  *mat.Dense

	// KNN: cloned training matrix, label copy, neighbor buffers (the
	// paired narrow-feature scan tracks two queries at once).
	train      *mat.Dense
	labels     []float64
	neighbors  []neighbor
	neighborsB []neighbor
}

// floats resizes *p to length n, reusing its storage when the capacity
// suffices. Contents are unspecified; callers overwrite fully.
func floats(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return *p
}

// EigenSubspace returns a copy of the converged eigensolver subspace
// basis of the last PCA fit on this workspace, or nil when none is
// available (no fit yet, or the solver took its full-decomposition
// fallback). The result is suitable as PCA.Warm for later fits on
// nearby data.
func (ws *Workspace) EigenSubspace() *mat.Dense { return ws.eig.Subspace() }

// fitScaler learns the column transform of x into the workspace and
// returns a pointer to it, valid until the next FitIn on ws. It matches
// mat.FitStandardizer (standardize) and the centered-only unit-scale
// path (raw) bit for bit.
func (ws *Workspace) fitScaler(x *mat.Dense, standardize bool) *mat.Standardizer {
	_, d := x.Dims()
	mean := mat.ColMeansInto(floats(&ws.mean, d), x)
	std := floats(&ws.std, d)
	if standardize {
		mat.ColStdsInto(std, x, mean)
		for j, sd := range std {
			if sd == 0 || math.IsNaN(sd) || math.IsInf(sd, 0) {
				std[j] = 1
			}
		}
	} else {
		for j := range std {
			std[j] = 1
		}
	}
	ws.scaler = mat.Standardizer{Mean: mean, Std: std}
	return &ws.scaler
}
