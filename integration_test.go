package faultmem_test

import (
	"math"
	"testing"

	"faultmem"
	"faultmem/internal/exp"
)

// TestIntegrationFullPipeline exercises the complete system the way the
// paper's evaluation does: sample a die from the cell model at a scaled
// voltage, discover its faults with BIST, program the FM-LUT, store a
// training set through the resulting memory, train a model, and compare
// its quality against the unprotected path — all through the public API.
func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration pipeline is slow")
	}
	const seed = 99

	// 1. A die at a scaled operating point.
	model := faultmem.Default28nmCellModel()
	die := faultmem.SampleDie(seed, faultmem.Rows16KB, model)
	vdd := model.VDDForPcell(1e-3)
	faults := die.AtVDD(vdd, faultmem.Flip)
	if len(faults) < 50 {
		t.Fatalf("die has only %d faults at VDD=%.2f; expected ~131", len(faults), vdd)
	}

	// 2. BIST discovers exactly the injected faults and programs the LUT.
	arr := faultmem.NewBitArray(faultmem.Rows16KB, 32)
	if err := arr.SetFaults(faults); err != nil {
		t.Fatal(err)
	}
	shuffled, report, err := faultmem.RunBISTAndProgram(faultmem.MarchCMinus(), arr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Detected) != len(faults) {
		t.Fatalf("BIST detected %d of %d faults", len(report.Detected), len(faults))
	}

	// 3. Train on data that round-tripped the protected memory.
	ds := faultmem.WineDataset(seed)
	train, test := ds.Split(0.8, seed)
	clean := faultmem.NewElasticNet()
	if err := clean.Fit(train.X, train.Y); err != nil {
		t.Fatal(err)
	}
	ref := clean.Score(test.X, test.Y)
	if ref <= 0 {
		t.Fatalf("clean reference R² = %g", ref)
	}

	evaluate := func(m faultmem.Memory) float64 {
		x, y := faultmem.RoundTripDataset(m, train.X, train.Y)
		en := faultmem.NewElasticNet()
		if err := en.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return en.Score(test.X, test.Y) / ref
	}

	qShuffled := evaluate(shuffled)
	raw, err := faultmem.NewRawMemory(faultmem.Rows16KB, faults)
	if err != nil {
		t.Fatal(err)
	}
	qRaw := evaluate(raw)

	// 4. The paper's Fig. 7a story on this single die: unprotected
	// quality collapses, nFM=2 shuffling stays close to fault-free.
	if qRaw > 0.5 {
		t.Errorf("unprotected quality %.3f; expected collapse", qRaw)
	}
	if qShuffled < 0.8 {
		t.Errorf("nFM=2 shuffled quality %.3f; expected near 1", qShuffled)
	}
	if qShuffled <= qRaw {
		t.Errorf("shuffling (%.3f) did not beat no protection (%.3f)", qShuffled, qRaw)
	}
}

// TestIntegrationRedundancyVsShuffling contrasts the two philosophies on
// the same dies: at a moderately scaled voltage the spare-line budget
// stops repairing dies that bit-shuffling still renders usable.
func TestIntegrationRedundancyVsShuffling(t *testing.T) {
	model := faultmem.Default28nmCellModel()
	budget := faultmem.RepairBudget{SpareRows: 8, SpareCols: 8}
	const dies = 10
	vdd := model.VDDForPcell(5e-4) // ~65 faults per die

	rejected, usable := 0, 0
	for d := int64(0); d < dies; d++ {
		die := faultmem.SampleDie(200+d, faultmem.Rows16KB, model)
		faults := die.AtVDD(vdd, faultmem.Flip)
		if _, ok, err := faultmem.NewRepairedMemory(faultmem.Rows16KB, faults, budget); err != nil {
			t.Fatal(err)
		} else if !ok {
			rejected++
		}
		// The quality criterion accepts the same die under shuffling.
		mse, err := faultmem.MSE(faults, faultmem.Rows16KB, "nfm5")
		if err != nil {
			t.Fatal(err)
		}
		if mse < 1e6 {
			usable++
		}
		if faultmem.MinSpareLines(faults) > len(faults) {
			t.Error("König bound exceeds fault count")
		}
	}
	if rejected == 0 {
		t.Errorf("redundancy repaired all %d dies at ~65 faults; budget should be exhausted", dies)
	}
	if usable != dies {
		t.Errorf("shuffling quality criterion accepted %d/%d dies; want all", usable, dies)
	}
}

// TestIntegrationExpDeterminism pins the experiment harness: the same
// seeds must regenerate identical exhibit rows across processes (the
// reproducibility contract of EXPERIMENTS.md).
func TestIntegrationExpDeterminism(t *testing.T) {
	a := exp.Fig2(exp.Fig2Params{VMin: 0.7, VMax: 0.8, Step: 0.05, ISDirections: 500, MemoryBytes: 16384, Seed: 4})
	b := exp.Fig2(exp.Fig2Params{VMin: 0.7, VMax: 0.8, Step: 0.05, ISDirections: 500, MemoryBytes: 16384, Seed: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Fig2 row %d differs across runs", i)
		}
	}
	p := exp.DefaultFig5Params()
	p.CDF.Trun = 2e3
	x := exp.Fig5(p)
	y := exp.Fig5(p)
	for i := range x.CDFs {
		if math.Abs(x.CDFs[i].MSEAtYield(0.9)-y.CDFs[i].MSEAtYield(0.9)) != 0 {
			t.Fatalf("Fig5 arm %d differs across runs", i)
		}
	}
}
