// Command bistscan demonstrates the power-on self-test flow of §3 on a
// simulated faulty 16 KB array: it injects faults (from an explicit count
// or a supply voltage via the 28 nm cell model), runs a March test,
// prints the detected fault map and the programmed FM-LUT entries, and
// verifies the shuffling datapath's error bound on every faulty row.
//
//	bistscan -vdd 0.7 -nfm 5 -march marchc
//	bistscan -faults 24 -nfm 3 -march matsplus -v
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"faultmem/internal/bist"
	"faultmem/internal/bits"
	"faultmem/internal/core"
	"faultmem/internal/fault"
	"faultmem/internal/sram"
	"faultmem/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "bistscan: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rows := flag.Int("rows", 4096, "array depth in 32-bit words (4096 = 16KB)")
	nfm := flag.Int("nfm", 5, "FM-LUT entry width (1..5)")
	faults := flag.Int("faults", 0, "inject exactly this many faults (0 = derive from -vdd)")
	vdd := flag.Float64("vdd", 0.70, "supply voltage; faults drawn from the 28nm cell model when -faults is 0")
	march := flag.String("march", "marchc", "test algorithm: zeroone|matsplus|marchc|marchb")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print every detected fault and FM-LUT entry")
	dump := flag.String("dump", "", "write the detected fault map as JSON to this file")
	flag.Parse()

	var alg bist.Algorithm
	switch *march {
	case "zeroone":
		alg = bist.ZeroOne()
	case "matsplus":
		alg = bist.MATSPlus()
	case "marchc":
		alg = bist.MarchCMinus()
	case "marchb":
		alg = bist.MarchB()
	default:
		return fmt.Errorf("unknown March test %q", *march)
	}

	rng := stats.NewRand(*seed)
	var fm fault.Map
	if *faults > 0 {
		fm = fault.GenerateCount(rng, *rows, 32, *faults, fault.Flip)
		fm = fault.RandomKinds(rng, fm, []fault.Kind{fault.Flip, fault.StuckAt0, fault.StuckAt1})
		fmt.Printf("injected %d faults (mixed kinds) into %dx32 array\n", len(fm), *rows)
	} else {
		model := sram.Default28nm()
		die := fault.SampleCriticalVoltages(rng, *rows, 32, model)
		fm = die.AtVDD(*vdd, fault.Flip)
		fmt.Printf("die at VDD=%.2fV: Pcell=%.3e -> %d failing cells in %dx32 array\n",
			*vdd, model.Pcell(*vdd), len(fm), *rows)
	}

	arr := sram.NewArray(*rows, 32)
	if err := arr.SetFaults(fm); err != nil {
		return err
	}

	cfg := core.Config{Width: 32, NFM: *nfm}
	lut, rep, err := bist.ProgramFMLUT(alg, arr, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d word operations, detected %d faulty cells (injected %d)\n",
		rep.Algorithm, rep.Operations, len(rep.Detected), len(fm))
	if len(rep.Detected) != len(fm) {
		return fmt.Errorf("BIST coverage gap: detected %d of %d", len(rep.Detected), len(fm))
	}

	byRow := rep.Detected.ByRow()
	if *verbose {
		rowsSorted := make([]int, 0, len(byRow))
		for r := range byRow {
			rowsSorted = append(rowsSorted, r)
		}
		sort.Ints(rowsSorted)
		for _, r := range rowsSorted {
			fmt.Printf("  row %4d: faulty cols %v -> xFM=%d, T=%d\n",
				r, byRow[r], lut.X(r), lut.Shift(r))
		}
	}

	// Attach the datapath and verify the single-fault error bound.
	shuf, err := core.NewShuffledWithLUT(arr, lut)
	if err != nil {
		return err
	}
	bound := cfg.MaxErrorMagnitude()
	worst := uint64(0)
	checked := 0
	for r, cols := range byRow {
		if len(cols) != 1 {
			continue // multi-fault rows carry a best-effort bound only
		}
		checked++
		for _, v := range []uint32{0, 0xFFFFFFFF, 0xA5A5A5A5} {
			shuf.Write(r, v)
			got := shuf.Read(r)
			mag := bits.ErrorMagnitude2c(uint64(v), uint64(v^got), 32)
			if mag > worst {
				worst = mag
			}
			if mag > bound {
				return fmt.Errorf("row %d: error magnitude %d exceeds 2^(S-1)=%d", r, mag, bound)
			}
		}
	}
	fmt.Printf("verified %d single-fault rows: worst error magnitude %d (bound 2^(S-1) = %d, S = %d)\n",
		checked, worst, bound, cfg.SegmentSize())
	fmt.Printf("FM-LUT storage: %d bits (%d columns x %d rows)\n",
		lut.StorageBits(), cfg.NFM, lut.Rows())

	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Detected.WriteJSON(f, *rows, 32); err != nil {
			return err
		}
		fmt.Printf("fault map written to %s\n", *dump)
	}
	return nil
}
