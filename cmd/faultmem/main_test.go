package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestUnknownExperimentExitsNonZero locks in the fix for the silent-zero
// exit on unknown subcommand paths: an unrecognized experiment name must
// list the registry and return a non-zero code, through both the `run`
// subcommand and the bare-name sugar.
func TestUnknownExperimentExitsNonZero(t *testing.T) {
	for _, args := range [][]string{
		{"run", "bogus"},
		{"bogus"},
		{"run", "fig99", "-json"},
	} {
		var out, errOut bytes.Buffer
		code := execute(context.Background(), args, &out, &errOut)
		if code == 0 {
			t.Fatalf("%v: exit code 0, want non-zero", args)
		}
		if !strings.Contains(errOut.String(), "fig5") || !strings.Contains(errOut.String(), "fig7") {
			t.Fatalf("%v: stderr does not list the registry:\n%s", args, errOut.String())
		}
	}
}

func TestRunMissingNameExitsNonZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"run"}, &out, &errOut); code == 0 {
		t.Fatal("bare `run` exited 0")
	}
	if code := execute(context.Background(), nil, &out, &errOut); code == 0 {
		t.Fatal("no arguments exited 0")
	}
}

func TestListAndHelpExitZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"list"}, &out, &errOut); code != 0 {
		t.Fatalf("list exited %d", code)
	}
	for _, name := range []string{"fig2", "fig4", "fig5", "fig6", "fig7", "table1", "energy"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("list missing %q", name)
		}
	}
	if code := execute(context.Background(), []string{"help"}, &out, &errOut); code != 0 {
		t.Fatalf("help exited %d", code)
	}
}

// TestRunSmallExperimentJSON drives a cheap experiment end to end through
// the CLI path: text and JSON outputs, params override, exit code 0.
func TestRunSmallExperimentJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	code := execute(context.Background(), []string{"run", "fig4", "-json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"experiment": "fig4"`) {
		t.Fatalf("JSON output missing experiment field:\n%s", out.String())
	}

	out.Reset()
	code = execute(context.Background(), []string{"run", "width", "-params", `{"Rows": 1024}`}, &out, &errOut)
	if code != 0 {
		t.Fatalf("params override exit %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "shuffle vs full SECDED") {
		t.Fatalf("width table missing:\n%s", out.String())
	}
}

// TestRunCancelledContextExitsNonZero: a pre-cancelled context must fail
// the run with a non-zero code instead of printing empty results.
func TestRunCancelledContextExitsNonZero(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	if code := execute(ctx, []string{"run", "fig5", "-quick"}, &out, &errOut); code == 0 {
		t.Fatal("cancelled run exited 0")
	}
	if !strings.Contains(errOut.String(), "cancel") {
		t.Fatalf("stderr does not mention cancellation: %s", errOut.String())
	}
}

// TestRunHelpExitsZero: -h on a run flag set is a help request, not an
// error.
func TestRunHelpExitsZero(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"run", "fig5", "-h"}, &out, &errOut); code != 0 {
		t.Fatalf("run -h exited %d", code)
	}
}
