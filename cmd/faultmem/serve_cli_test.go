package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"faultmem"
)

// waitServe polls until the server behind addr accepts TCP connections.
func waitServe(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("server on %s never came up: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startServeCLI runs `faultmem serve` through execute() in the
// background and returns a stop function that triggers the graceful
// drain (via context cancel) and returns the exit code and stderr.
func startServeCLI(t *testing.T, args []string) (stop func() (int, string)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var errOut bytes.Buffer
	var out bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- execute(ctx, args, &out, &errOut)
	}()
	return func() (int, string) {
		cancel()
		select {
		case code := <-done:
			return code, errOut.String()
		case <-time.After(time.Minute):
			t.Fatal("serve did not drain and exit")
			return -1, ""
		}
	}
}

// TestServeCLIEndToEnd drives the whole serving surface through
// execute(): serve comes up, a submitted campaign's JSON is
// byte-identical to a local run, a detached submission shows up in
// status listings and cancels cleanly, and cancelling the serve context
// drains gracefully with exit code 0.
func TestServeCLIEndToEnd(t *testing.T) {
	var golden, gerr bytes.Buffer
	if code := execute(context.Background(), []string{"run", "fig4", "-quick", "-json", "-seed", "7"}, &golden, &gerr); code != 0 {
		t.Fatalf("golden run exited %d: %s", code, gerr.String())
	}

	addr := freePort(t)
	stop := startServeCLI(t, []string{
		"serve", "-listen", addr, "-snapshot-every", "20ms", "-client-ttl", "60s", "-drain-timeout", "30s",
	})
	waitServe(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var out, errOut bytes.Buffer
	code := execute(ctx, []string{"submit", "-connect", addr, "-quick", "-json", "-seed", "7", "fig4"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("submit exited %d: %s", code, errOut.String())
	}
	if out.String() != golden.String() {
		t.Errorf("served result diverged from local run\nlocal:\n%s\nserved:\n%s", golden.String(), out.String())
	}
	if !strings.Contains(errOut.String(), "session token") {
		t.Errorf("submit stderr missing the session token line:\n%s", errOut.String())
	}

	// A detached submission prints its job ID and leaves the job running.
	out.Reset()
	errOut.Reset()
	if code := execute(ctx, []string{"submit", "-connect", addr, "-detach", "-label", "background", "fig7"}, &out, &errOut); code != 0 {
		t.Fatalf("detached submit exited %d: %s", code, errOut.String())
	}
	jobID := strings.TrimSpace(out.String())
	if jobID == "" {
		t.Fatal("detached submit printed no job ID")
	}

	// The status listing names both jobs and the detached label.
	out.Reset()
	errOut.Reset()
	if code := execute(ctx, []string{"status", "-connect", addr}, &out, &errOut); code != 0 {
		t.Fatalf("status exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"fig4", "fig7", "background", "done"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("status listing missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	errOut.Reset()
	if code := execute(ctx, []string{"cancel", "-connect", addr, jobID}, &out, &errOut); code != 0 {
		t.Fatalf("cancel exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "fig7") {
		t.Errorf("cancel status missing the job row:\n%s", out.String())
	}
	// The cancellation lands asynchronously; poll the job's JSON status.
	deadline := time.Now().Add(30 * time.Second)
	for {
		out.Reset()
		errOut.Reset()
		if code := execute(ctx, []string{"status", "-connect", addr, "-json", jobID}, &out, &errOut); code != 0 {
			t.Fatalf("status -json exited %d: %s", code, errOut.String())
		}
		if strings.Contains(out.String(), `"state": "cancelled"`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached cancelled state:\n%s", jobID, out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	code, serveErr := stop()
	if code != 0 {
		t.Fatalf("serve exited %d after drain: %s", code, serveErr)
	}
	for _, want := range []string{"listening on", "draining", "stopped"} {
		if !strings.Contains(serveErr, want) {
			t.Errorf("serve stderr missing %q:\n%s", want, serveErr)
		}
	}
}

// TestServeCLIAuth locks in the shared-secret handshake through the
// CLI: a wrong or missing -auth-token is rejected, the right one works.
func TestServeCLIAuth(t *testing.T) {
	addr := freePort(t)
	stop := startServeCLI(t, []string{"serve", "-listen", addr, "-auth-token", "sesame"})
	waitServe(t, addr)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var out, errOut bytes.Buffer
	if code := execute(ctx, []string{"submit", "-connect", addr, "-auth-token", "wrong", "-quick", "fig4"}, &out, &errOut); code != 1 {
		t.Fatalf("wrong-token submit exited %d, want 1: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "auth") {
		t.Errorf("wrong-token stderr does not hint at auth:\n%s", errOut.String())
	}
	errOut.Reset()
	if code := execute(ctx, []string{"status", "-connect", addr}, &out, &errOut); code != 1 {
		t.Fatalf("tokenless status exited %d, want 1: %s", code, errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := execute(ctx, []string{"submit", "-connect", addr, "-auth-token", "sesame", "-quick", "-json", "fig4"}, &out, &errOut); code != 0 {
		t.Fatalf("authenticated submit exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"experiment": "fig4"`) {
		t.Errorf("authenticated submit returned no result JSON:\n%s", out.String())
	}

	if code, serveErr := stop(); code != 0 {
		t.Fatalf("serve exited %d: %s", code, serveErr)
	}
}

// TestListJSON locks in the machine-readable registry listing: every
// experiment appears with its description and default params JSON.
func TestListJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"list", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("list -json exited %d: %s", code, errOut.String())
	}
	var listings []struct {
		Name          string          `json:"name"`
		Description   string          `json:"description"`
		DefaultParams json.RawMessage `json:"default_params"`
	}
	if err := json.Unmarshal(out.Bytes(), &listings); err != nil {
		t.Fatalf("list -json output is not JSON: %v\n%s", err, out.String())
	}
	if len(listings) != len(faultmem.Experiments()) {
		t.Fatalf("listing has %d entries, registry has %d", len(listings), len(faultmem.Experiments()))
	}
	byName := map[string]bool{}
	for _, l := range listings {
		byName[l.Name] = true
		if l.Description == "" {
			t.Errorf("%s: empty description", l.Name)
		}
		if len(l.DefaultParams) == 0 || !json.Valid(l.DefaultParams) {
			t.Errorf("%s: missing or invalid default_params: %s", l.Name, l.DefaultParams)
		}
	}
	for _, name := range []string{"fig2", "fig5", "fig7", "table1"} {
		if !byName[name] {
			t.Errorf("listing missing %q", name)
		}
	}

	// The plain listing still renders, and stray arguments are rejected.
	out.Reset()
	if code := execute(context.Background(), []string{"list"}, &out, &errOut); code != 0 || !strings.Contains(out.String(), "fig5") {
		t.Fatalf("plain list broke: exit %d\n%s", code, out.String())
	}
	if code := execute(context.Background(), []string{"list", "stray"}, &out, &errOut); code != 2 {
		t.Fatalf("list with a stray argument exited %d, want 2", code)
	}
}

// TestServeClientBadInvocations: malformed client verbs exit 2 before
// touching the network.
func TestServeClientBadInvocations(t *testing.T) {
	cases := [][]string{
		{"submit", "-connect", "127.0.0.1:1"},                 // no experiment
		{"status", "-connect", "127.0.0.1:1", "a", "b"},       // too many args
		{"cancel", "-connect", "127.0.0.1:1"},                 // no job ID
		{"cancel", "-connect", "127.0.0.1:1", "not-a-number"}, // bad job ID
		{"serve", "-listen", "127.0.0.1:0", "stray"},          // stray arg
	}
	for _, args := range cases {
		var out, errOut bytes.Buffer
		if code := execute(context.Background(), args, &out, &errOut); code != 2 {
			t.Errorf("%v exited %d, want 2: %s", args, code, errOut.String())
		}
	}
}
