package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"faultmem"
)

// The serve-mode verbs: `faultmem serve` runs the long-lived campaign
// server (workers and clients share its port), and `faultmem submit`,
// `status`, and `cancel` are its client surface. The shared secret for
// all of them defaults to the FAULTMEM_AUTH_TOKEN environment variable
// so it stays out of process listings.

// authTokenEnv is the environment variable every -auth-token flag
// defaults to.
const authTokenEnv = "FAULTMEM_AUTH_TOKEN"

// serveCmd runs the campaign server until interrupted (Ctrl-C) or
// SIGTERMed, then drains gracefully: running campaigns finish (bounded
// by -drain-timeout), their finals are delivered, new submissions are
// rejected.
func serveCmd(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7715", "TCP address to accept workers and clients on")
	authToken := fs.String("auth-token", os.Getenv(authTokenEnv),
		"shared secret required from workers and clients (default $"+authTokenEnv+")")
	workerSlots := fs.Int("worker-slots", 0, "scheduler tickets per connected worker (0 = default)")
	localWorkers := fs.Int("local-workers", 0, "shards computed locally when the pool is empty (0 = all cores)")
	clientInflight := fs.Int("client-inflight", 0, "per-client concurrent shard cap (0 = uncapped)")
	snapshotEvery := fs.Duration("snapshot-every", 0, "partial-result push period (0 = default)")
	clientTTL := fs.Duration("client-ttl", 0, "resume window for disconnected clients (0 = default)")
	lease := fs.Duration("lease", 0, "worker shard lease before reassignment (0 = default)")
	sessionTTL := fs.Duration("session-ttl", 0, "resume window for disconnected workers (0 = default)")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a drain waits for running campaigns (0 = forever)")
	verbose := fs.Bool("verbose", false, "log job lifecycle, client and worker churn on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "faultmem serve: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cfg := faultmem.ServeConfig{
		AuthToken:      *authToken,
		WorkerSlots:    *workerSlots,
		LocalWorkers:   *localWorkers,
		ClientInflight: *clientInflight,
		SnapshotEvery:  *snapshotEvery,
		ClientTTL:      *clientTTL,
	}
	cfg.Sweep.Lease = *lease
	cfg.Sweep.SessionTTL = *sessionTTL
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "faultmem serve: "+format+"\n", args...)
		}
	}
	srv, err := faultmem.ListenServe(*listen, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem serve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "faultmem serve: listening on %s\n", srv.Addr())

	term := make(chan os.Signal, 1)
	signal.Notify(term, syscall.SIGTERM)
	defer signal.Stop(term)
	select {
	case <-ctx.Done():
	case <-term:
	}

	fmt.Fprintln(stderr, "faultmem serve: draining")
	dctx := context.Background()
	if *drainTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, *drainTimeout)
		defer cancel()
	}
	if err := srv.Drain(dctx); err != nil {
		fmt.Fprintf(stderr, "faultmem serve: drain: %v\n", err)
		return 1
	}
	st := srv.PoolStats()
	fmt.Fprintf(stderr, "faultmem serve: stopped (%d shards remote, %d local, %d reassigned)\n",
		st.RemoteShards, st.LocalShards, st.Reassigned)
	return 0
}

// clientFlags is the connection half every client verb shares.
type clientFlags struct {
	connect *string
	auth    *string
	token   *string
}

func addClientFlags(fs *flag.FlagSet) clientFlags {
	return clientFlags{
		connect: fs.String("connect", "127.0.0.1:7715", "campaign server address to dial"),
		auth: fs.String("auth-token", os.Getenv(authTokenEnv),
			"shared secret for the server (default $"+authTokenEnv+")"),
		token: fs.String("token", "", "session token to resume (from a previous submit)"),
	}
}

func (cf clientFlags) dial(ctx context.Context, opts faultmem.ServeOptions, stderr io.Writer) (*faultmem.ServeClient, error) {
	opts.Token = *cf.token
	opts.Auth = *cf.auth
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	c, err := faultmem.DialServe(dctx, *cf.connect, opts)
	if err != nil {
		return nil, err
	}
	if c.Draining() {
		fmt.Fprintln(stderr, "faultmem: note: server is draining — running jobs finish, new submissions are rejected")
	}
	return c, nil
}

// submitCmd submits one campaign, streams its snapshots with -progress,
// and renders the final result exactly like `faultmem run` would.
func submitCmd(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cf := addClientFlags(fs)
	label := fs.String("label", "", "free-form annotation echoed in status listings")
	priority := fs.Int("priority", 0, "fair-share weight (0/1 = default; higher gets more concurrent shards)")
	detach := fs.Bool("detach", false, "submit and exit immediately, printing the job ID and session token")
	jsonOut := fs.Bool("json", false, "emit the Result JSON")
	csvOut := fs.Bool("csv", false, "emit CSV tables")
	seed := fs.Int64("seed", 0, "override the experiment's base seed")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines on the serving side (0 = all cores)")
	quick := fs.Bool("quick", false, "reduced smoke budgets")
	hist := fs.String("hist", "auto", "CDF accumulator: auto|exact|hist")
	bins := fs.Int("bins", 0, "log-histogram bin count (0 = default)")
	paramsJSON := fs.String("params", "", "JSON override of the experiment's default params")
	progress := fs.Bool("progress", false, "report streamed partial-state snapshots on stderr")
	timeout := fs.Duration("timeout", 0, "give up waiting after this duration (0 = none; the job keeps running)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "faultmem submit: want exactly one experiment name\n\n")
		printExperiments(stderr)
		return 2
	}
	name := fs.Arg(0)

	mode, err := faultmem.ParseAccumMode(*hist)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem submit: %v\n", err)
		return 2
	}
	spec := faultmem.ServeCampaign{
		Experiment: name,
		Label:      *label,
		Priority:   *priority,
		Quick:      *quick,
		Workers:    *workers,
		Accum:      mode,
		Bins:       *bins,
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			spec.Seed = seed
		}
	})
	if *paramsJSON != "" {
		spec.Params = []byte(*paramsJSON)
	}

	opts := faultmem.ServeOptions{}
	if *progress {
		opts.OnSnapshot = func(snap faultmem.ServeJobSnapshot, seq uint64) {
			if len(snap.Stages) == 0 {
				fmt.Fprintf(stderr, "\r[job %d] %s", snap.ID, snap.State)
				return
			}
			for _, sp := range snap.Stages {
				fmt.Fprintf(stderr, "\r[job %d] %s %d/%d", snap.ID, sp.Stage, sp.Done, sp.Total)
			}
		}
	}
	c, err := cf.dial(ctx, opts, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem submit: %v\n", err)
		return 1
	}
	defer c.Close()

	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	id, err := c.Submit(ctx, spec)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem submit: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "faultmem submit: job %d admitted (session token %s)\n", id, c.Token())
	if *detach {
		fmt.Fprintf(stdout, "%d\n", id)
		return 0
	}

	f, err := c.Wait(ctx, id)
	if *progress {
		fmt.Fprintln(stderr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "faultmem submit: %v\nfaultmem submit: job %d may still be running; resume with -token %s\n",
			err, id, c.Token())
		return 1
	}
	if f.Err != "" {
		fmt.Fprintf(stderr, "faultmem submit: job %d: %s\n", id, f.Err)
		return 1
	}
	return renderFinal(f.Result, *jsonOut, *csvOut, stdout, stderr)
}

// renderFinal renders a job's ExperimentResult JSON the way `faultmem
// run` renders a local result: raw JSON (byte-identical to run -json),
// CSV, or aligned text.
func renderFinal(resultJSON []byte, jsonOut, csvOut bool, stdout, stderr io.Writer) int {
	if jsonOut {
		if _, err := fmt.Fprintf(stdout, "%s\n", resultJSON); err != nil {
			fmt.Fprintf(stderr, "faultmem submit: %v\n", err)
			return 1
		}
		return 0
	}
	var res faultmem.ExperimentResult
	if err := json.Unmarshal(resultJSON, &res); err != nil {
		fmt.Fprintf(stderr, "faultmem submit: decoding result: %v\n", err)
		return 1
	}
	var rerr error
	if csvOut {
		rerr = res.RenderCSV(stdout, true)
	} else {
		rerr = res.Render(stdout)
	}
	if rerr == nil {
		_, rerr = fmt.Fprintln(stdout)
	}
	if rerr != nil {
		fmt.Fprintf(stderr, "faultmem submit: %v\n", rerr)
		return 1
	}
	return 0
}

// statusCmd shows one job's status (with a job ID argument) or lists
// every job the server knows.
func statusCmd(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem status", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cf := addClientFlags(fs)
	jsonOut := fs.Bool("json", false, "emit the status as JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 1 {
		fmt.Fprintf(stderr, "faultmem status: want at most one job ID\n")
		return 2
	}
	c, err := cf.dial(ctx, faultmem.ServeOptions{}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem status: %v\n", err)
		return 1
	}
	defer c.Close()
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	var list []faultmem.ServeJobStatus
	if fs.NArg() == 1 {
		id, perr := strconv.ParseUint(fs.Arg(0), 10, 64)
		if perr != nil {
			fmt.Fprintf(stderr, "faultmem status: bad job ID %q\n", fs.Arg(0))
			return 2
		}
		st, serr := c.Status(cctx, id)
		if serr != nil {
			fmt.Fprintf(stderr, "faultmem status: %v\n", serr)
			return 1
		}
		list = []faultmem.ServeJobStatus{st}
	} else if list, err = c.List(cctx); err != nil {
		fmt.Fprintf(stderr, "faultmem status: %v\n", err)
		return 1
	}
	return renderStatuses(list, *jsonOut, stdout, stderr, "status")
}

// cancelCmd cancels one running job and prints its resulting status.
func cancelCmd(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem cancel", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cf := addClientFlags(fs)
	jsonOut := fs.Bool("json", false, "emit the status as JSON")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintf(stderr, "faultmem cancel: want exactly one job ID\n")
		return 2
	}
	id, perr := strconv.ParseUint(fs.Arg(0), 10, 64)
	if perr != nil {
		fmt.Fprintf(stderr, "faultmem cancel: bad job ID %q\n", fs.Arg(0))
		return 2
	}
	c, err := cf.dial(ctx, faultmem.ServeOptions{}, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem cancel: %v\n", err)
		return 1
	}
	defer c.Close()
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	st, err := c.Cancel(cctx, id)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem cancel: %v\n", err)
		return 1
	}
	return renderStatuses([]faultmem.ServeJobStatus{st}, *jsonOut, stdout, stderr, "cancel")
}

// renderStatuses prints job statuses as an aligned table or JSON.
func renderStatuses(list []faultmem.ServeJobStatus, jsonOut bool, stdout, stderr io.Writer, verb string) int {
	if jsonOut {
		out, err := json.MarshalIndent(list, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", verb, err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", out)
		return 0
	}
	fmt.Fprintf(stdout, "%-6s %-14s %-10s %-8s %-12s %s\n", "JOB", "EXPERIMENT", "STATE", "PRIORITY", "PROGRESS", "LABEL")
	for _, st := range list {
		done, total := 0, 0
		for _, sp := range st.Stages {
			done += sp.Done
			total += sp.Total
		}
		prog := "-"
		if total > 0 {
			prog = fmt.Sprintf("%d/%d", done, total)
		}
		fmt.Fprintf(stdout, "%-6d %-14s %-10s %-8d %-12s %s\n",
			st.ID, st.Experiment, st.State, st.Priority, prog, st.Label)
		if st.Error != "" {
			fmt.Fprintf(stdout, "       error: %s\n", st.Error)
		}
	}
	return 0
}

// listCmd prints the experiment registry, optionally as JSON (name,
// description, default params) for tooling.
func listCmd(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem list", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the registry as JSON (name, description, default params)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "faultmem list: unexpected argument %q\n", fs.Arg(0))
		return 2
	}
	if !*jsonOut {
		printExperiments(stdout)
		return 0
	}
	type listing struct {
		Name          string          `json:"name"`
		Description   string          `json:"description,omitempty"`
		DefaultParams json.RawMessage `json:"default_params,omitempty"`
	}
	var out []listing
	for _, name := range faultmem.Experiments() {
		desc, _ := faultmem.DescribeExperiment(name)
		l := listing{Name: name, Description: desc}
		if e, ok := faultmem.LookupExperiment(name); ok {
			if b, err := json.Marshal(e.DefaultParams()); err == nil {
				l.DefaultParams = b
			}
		}
		out = append(out, l)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "faultmem list: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s\n", b)
	return 0
}
