// Command faultmem regenerates every table and figure of the paper's
// evaluation:
//
//	faultmem fig2    # SRAM cell failure probability vs VDD (Fig. 2)
//	faultmem fig4    # error magnitude per faulty bit position (Fig. 4)
//	faultmem fig5    # CDF of memory MSE per protection scheme (Fig. 5)
//	faultmem fig6    # hardware overhead vs H(39,32) SECDED (Fig. 6)
//	faultmem fig7    # application quality CDFs (Fig. 7a/b/c)
//	faultmem table1  # applications and datasets summary (Table 1)
//	faultmem all     # everything, in paper order
//
// Common flags: -csv writes machine-readable output, -seed fixes the
// random streams. Experiment-specific flags (sample budgets, Pcell,
// memory size) are listed by each subcommand's -h.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"faultmem/internal/exp"
	"faultmem/internal/yield"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "fig2":
		err = runFig2(args)
	case "fig4":
		err = runFig4(args)
	case "fig5":
		err = runFig5(args)
	case "fig6":
		err = runFig6(args)
	case "fig7":
		err = runFig7(args)
	case "table1":
		err = runTable1(args)
	case "ablate":
		err = runAblate(args)
	case "redundancy":
		err = runRedundancy(args)
	case "energy":
		err = runEnergy(args)
	case "all":
		err = runAll(args)
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "faultmem: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "faultmem %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `faultmem - regenerate the DAC'15 bit-shuffling paper's evaluation

usage: faultmem <command> [flags]

commands:
  fig2     SRAM cell failure probability under VDD scaling
  fig4     error magnitude per faulty bit position (all nFM options)
  fig5     CDF of memory MSE: none / nFM=1..5 / P-ECC (16KB, Pcell=5e-6)
  fig6     read power / delay / area overhead relative to H(39,32) SECDED
  fig7     application quality CDFs (-app elasticnet|pca|knn|all)
  table1   evaluation applications and datasets
  ablate     beyond-the-paper ablations (FM-LUT policy, LUT realization, soft errors)
  redundancy spare-row/column economics under VDD scaling (Section 2's argument)
  energy     min viable VDD and read energy per scheme (the paper's payoff)
  all        run everything in paper order

run 'faultmem <command> -h' for the command's flags.
`)
}

func render(t *exp.Table, csvOut bool) error {
	var err error
	if csvOut {
		err = t.RenderCSV(os.Stdout, true)
	} else {
		err = t.Render(os.Stdout)
	}
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(os.Stdout)
	return err
}

func runFig2(args []string) error {
	fs := flag.NewFlagSet("fig2", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 2, "random seed")
	dirs := fs.Int("isdirs", 20000, "importance-sampling directions (0 disables the 6T cross-check)")
	step := fs.Float64("step", 0.02, "VDD sweep step [V]")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := exp.DefaultFig2Params()
	p.Seed = *seed
	p.ISDirections = *dirs
	p.Step = *step
	return render(exp.Fig2Table(exp.Fig2(p)), *csvOut)
}

func runFig4(args []string) error {
	fs := flag.NewFlagSet("fig4", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return render(exp.Fig4Table(exp.Fig4()), *csvOut)
}

func runFig5(args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 1, "random seed")
	trun := fs.Float64("trun", 1e6, "Monte-Carlo budget scale (paper: 1e7; hist mode keeps it O(1) in memory)")
	pcell := fs.Float64("pcell", 5e-6, "bit-cell failure probability")
	targets := fs.Bool("targets", true, "also print the MSE-at-yield-target table")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores; results identical for any value)")
	hist := fs.String("hist", "auto", "CDF accumulator: auto|exact|hist (hist = O(1)-memory log histogram)")
	bins := fs.Int("bins", 0, "log-histogram bin count (0 = default)")
	maxPer := fs.Int("maxper", 20000, "sample cap per failure count (0 = uncapped, the paper's convention)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := yield.ParseAccumMode(*hist)
	if err != nil {
		return err
	}
	p := exp.DefaultFig5Params()
	p.CDF.Seed = *seed
	p.CDF.Trun = *trun
	p.CDF.Pcell = *pcell
	p.CDF.Workers = *workers
	p.CDF.Accum = mode
	p.CDF.Bins = *bins
	p.CDF.MaxPerCount = *maxPer
	res := exp.Fig5(p)
	if err := render(res.CDFTable(), *csvOut); err != nil {
		return err
	}
	if *targets {
		return render(res.YieldTable(), *csvOut)
	}
	return nil
}

func runFig6(args []string) error {
	fs := flag.NewFlagSet("fig6", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	rows := fs.Int("rows", 4096, "macro depth in words (4096 = 16KB)")
	abs := fs.Bool("abs", false, "also print the absolute overhead table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res := exp.Fig6(exp.Fig6Params{Rows: *rows})
	if err := render(res.Fig6RelativeTable(), *csvOut); err != nil {
		return err
	}
	if *abs {
		return render(res.AbsoluteTable(), *csvOut)
	}
	return nil
}

func runFig7(args []string) error {
	fs := flag.NewFlagSet("fig7", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 7, "random seed")
	app := fs.String("app", "all", "benchmark: elasticnet|pca|knn|all")
	trials := fs.Int("trials", 500, "Monte-Carlo trials per protection arm (the paper's 500-sample budget; see -quick)")
	quick := fs.Bool("quick", false, fmt.Sprintf("quick tier: %d trials (the pre-paper-budget default) unless -trials is set explicitly", exp.QuickFig7Trials))
	pcell := fs.Float64("pcell", 1e-3, "bit-cell failure probability")
	paperPCA := fs.Bool("madelon500", false, "use the full 500-feature Madelon geometry (slower)")
	workers := fs.Int("workers", 0, "trial worker goroutines (0 = all cores; results identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		trialsSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "trials" {
				trialsSet = true
			}
		})
		if !trialsSet {
			*trials = exp.QuickFig7Trials
		}
	}
	apps := []exp.App{exp.AppElasticnet, exp.AppPCA, exp.AppKNN}
	if *app != "all" {
		a, err := exp.ParseApp(*app)
		if err != nil {
			return err
		}
		apps = []exp.App{a}
	}
	for _, a := range apps {
		p := exp.DefaultFig7Params(a)
		p.Seed = *seed
		p.Trials = *trials
		p.Pcell = *pcell
		p.MadelonPaperSize = *paperPCA
		p.Workers = *workers
		res, err := exp.Fig7(p)
		if err != nil {
			return err
		}
		if err := render(res.QualityCDFTable(), *csvOut); err != nil {
			return err
		}
		if err := render(res.SummaryTable(), *csvOut); err != nil {
			return err
		}
	}
	return nil
}

func runTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 3, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows, err := exp.Table1(*seed)
	if err != nil {
		return err
	}
	return render(exp.Table1Table(rows), *csvOut)
}

func runAblate(args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 5, "random seed")
	trials := fs.Int("trials", 5000, "Monte-Carlo trials for the multi-fault policy study")
	rows := fs.Int("rows", 1024, "macro depth for the transient study")
	pcell := fs.Float64("pcell", 1e-4, "persistent fault probability for the transient study")
	reads := fs.Int("reads", 8, "read passes per row in the transient study")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := render(exp.AblationMultiFaultTable(exp.AblationMultiFault(*seed, *trials)), *csvOut); err != nil {
		return err
	}
	if err := render(exp.AblationLUTTable(4096), *csvOut); err != nil {
		return err
	}
	rates := []float64{0, 1e-5, 1e-4}
	tr, err := exp.AblationTransient(*seed, *rows, *pcell, rates, *reads)
	if err != nil {
		return err
	}
	if err := render(exp.AblationTransientTable(tr, *pcell), *csvOut); err != nil {
		return err
	}
	bp := exp.DefaultBISTCoverageParams()
	bp.Seed = *seed
	if err := render(exp.BISTCoverageTable(exp.BISTCoverage(bp), bp), *csvOut); err != nil {
		return err
	}
	pp := exp.DefaultParetoParams()
	pp.CDF.Seed = *seed
	if err := render(exp.ParetoTable(exp.Pareto(pp), pp), *csvOut); err != nil {
		return err
	}
	return render(exp.WidthTable(exp.WidthAblation(4096)), *csvOut)
}

func runRedundancy(args []string) error {
	fs := flag.NewFlagSet("redundancy", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 17, "random seed")
	dies := fs.Int("dies", 300, "Monte-Carlo dies per operating point")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := exp.DefaultRedundancyParams()
	p.Seed = *seed
	p.Dies = *dies
	return render(exp.RedundancyTable(exp.RedundancyStudy(p), p), *csvOut)
}

func runEnergy(args []string) error {
	fs := flag.NewFlagSet("energy", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	seed := fs.Int64("seed", 13, "random seed")
	dies := fs.Int("dies", 400, "Monte-Carlo dies per (scheme, VDD) point")
	target := fs.Float64("target", 1e6, "MSE quality target")
	minYield := fs.Float64("minyield", 0.999, "required quality yield")
	workers := fs.Int("workers", 0, "die worker goroutines (0 = all cores; results identical for any value)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := exp.DefaultEnergyParams()
	p.Seed = *seed
	p.Dies = *dies
	p.MSETarget = *target
	p.YieldTarget = *minYield
	p.Workers = *workers
	return render(exp.EnergyTable(exp.EnergyStudy(p), p), *csvOut)
}

func runAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	csvOut := fs.Bool("csv", false, "CSV output")
	quick := fs.Bool("quick", false, "reduced sample budgets for a fast pass")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_ = csvOut

	banner(os.Stdout, "Fig. 2")
	p2 := exp.DefaultFig2Params()
	if *quick {
		p2.ISDirections = 4000
	}
	if err := render(exp.Fig2Table(exp.Fig2(p2)), *csvOut); err != nil {
		return err
	}

	banner(os.Stdout, "Fig. 4")
	if err := render(exp.Fig4Table(exp.Fig4()), *csvOut); err != nil {
		return err
	}

	banner(os.Stdout, "Table 1")
	t1, err := exp.Table1(3)
	if err != nil {
		return err
	}
	if err := render(exp.Table1Table(t1), *csvOut); err != nil {
		return err
	}

	banner(os.Stdout, "Fig. 5")
	p5 := exp.DefaultFig5Params()
	p5.CDF.Trun = 1e6
	p5.CDF.Workers = *workers
	if *quick {
		p5.CDF.Trun = 2e4
	}
	res5 := exp.Fig5(p5)
	if err := render(res5.CDFTable(), *csvOut); err != nil {
		return err
	}
	if err := render(res5.YieldTable(), *csvOut); err != nil {
		return err
	}

	banner(os.Stdout, "Fig. 6")
	res6 := exp.Fig6(exp.DefaultFig6Params())
	if err := render(res6.Fig6RelativeTable(), *csvOut); err != nil {
		return err
	}
	if err := render(res6.AbsoluteTable(), *csvOut); err != nil {
		return err
	}

	banner(os.Stdout, "Fig. 7")
	for _, a := range []exp.App{exp.AppElasticnet, exp.AppPCA, exp.AppKNN} {
		p7 := exp.DefaultFig7Params(a)
		p7.Workers = *workers
		if *quick {
			p7.Trials = 15
		}
		res7, err := exp.Fig7(p7)
		if err != nil {
			return err
		}
		if err := render(res7.QualityCDFTable(), *csvOut); err != nil {
			return err
		}
		if err := render(res7.SummaryTable(), *csvOut); err != nil {
			return err
		}
	}
	return nil
}

func banner(w io.Writer, s string) {
	fmt.Fprintf(w, "############ %s ############\n\n", s)
}
