// Command faultmem regenerates the paper's evaluation through the public
// experiment registry:
//
//	faultmem list                   # registered experiments
//	faultmem run fig5               # one experiment, text tables
//	faultmem run all -quick -json   # everything, reduced budgets, JSON
//	faultmem fig7                   # sugar for `faultmem run fig7`
//
// Every experiment takes the same flags — -seed, -workers, -quick, -json,
// -csv, -hist/-bins, -params (a JSON override of the experiment's default
// parameter struct), -progress, and -timeout — and every run is
// deterministic: results are bit-identical for any -workers value.
// Ctrl-C (or -timeout) cancels the campaign mid-flight through the
// engine's context plumbing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"faultmem"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	os.Exit(execute(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// execute is the testable entry point: it returns the process exit code
// instead of calling os.Exit.
func execute(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	case "list":
		printExperiments(stdout)
		return 0
	case "run":
		if len(rest) == 0 || strings.HasPrefix(rest[0], "-") {
			fmt.Fprintf(stderr, "faultmem run: missing experiment name\n\n")
			printExperiments(stderr)
			return 2
		}
		return runExperiment(ctx, rest[0], rest[1:], stdout, stderr)
	default:
		if strings.HasPrefix(cmd, "-") {
			fmt.Fprintf(stderr, "faultmem: unknown flag %q before a command\n\n", cmd)
			usage(stderr)
			return 2
		}
		// Sugar: `faultmem fig5` runs the registered experiment directly.
		return runExperiment(ctx, cmd, rest, stdout, stderr)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `faultmem - regenerate the DAC'15 bit-shuffling paper's evaluation

usage: faultmem <command> [flags]

commands:
  run <name|all>  run one registered experiment (or all, in paper order)
  list            list the experiment registry
  <name>          shorthand for 'run <name>'

run flags:
  -json           emit the machine-readable Result JSON
  -csv            emit CSV tables instead of aligned text
  -seed N         override the experiment's base seed
  -workers N      Monte-Carlo worker goroutines (0 = all cores; results
                  are bit-identical for any value)
  -quick          reduced smoke budgets
  -hist MODE      CDF accumulator: auto|exact|hist
  -bins N         log-histogram bin count (0 = default)
  -params JSON    override the experiment's default params (JSON object
                  merged over the defaults; not valid with 'all')
  -progress       report shard completions on stderr
  -timeout D      cancel the campaign after duration D (e.g. 90s)

`)
	printExperiments(w)
}

func printExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, name := range faultmem.Experiments() {
		desc, _ := faultmem.DescribeExperiment(name)
		fmt.Fprintf(w, "  %-18s %s\n", name, desc)
	}
}

func runExperiment(ctx context.Context, name string, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem run "+name, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the Result JSON")
	csvOut := fs.Bool("csv", false, "emit CSV tables")
	seed := fs.Int64("seed", 0, "override the experiment's base seed")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores)")
	quick := fs.Bool("quick", false, "reduced smoke budgets")
	hist := fs.String("hist", "auto", "CDF accumulator: auto|exact|hist")
	bins := fs.Int("bins", 0, "log-histogram bin count (0 = default)")
	paramsJSON := fs.String("params", "", "JSON override of the experiment's default params")
	progress := fs.Bool("progress", false, "report shard completions on stderr")
	timeout := fs.Duration("timeout", 0, "cancel the campaign after this duration (0 = none)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if name != "all" {
		if _, ok := faultmem.LookupExperiment(name); !ok {
			fmt.Fprintf(stderr, "faultmem: unknown experiment %q\n\n", name)
			printExperiments(stderr)
			return 2
		}
	}

	mode, err := faultmem.ParseAccumMode(*hist)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem: %v\n", err)
		return 2
	}
	r := &faultmem.Runner{
		Workers: *workers,
		Accum:   mode,
		Bins:    *bins,
		Quick:   *quick,
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			r.Seed = seed
		}
	})
	if *paramsJSON != "" {
		if name == "all" {
			fmt.Fprintln(stderr, "faultmem: -params cannot apply to 'run all'")
			return 2
		}
		r.Params = json.RawMessage(*paramsJSON)
	}
	if *progress {
		r.Progress = func(p faultmem.ExperimentProgress) {
			stage := p.Stage
			if stage != "" {
				stage = " " + stage
			}
			fmt.Fprintf(stderr, "\r%s%s %d/%d", p.Experiment, stage, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var results []*faultmem.ExperimentResult
	emit := func(res *faultmem.ExperimentResult) error {
		if *jsonOut {
			results = append(results, res)
			return nil
		}
		if name == "all" {
			fmt.Fprintf(stdout, "############ %s ############\n\n", res.Experiment)
		}
		var rerr error
		if *csvOut {
			rerr = res.RenderCSV(stdout, true)
		} else {
			rerr = res.Render(stdout)
		}
		if rerr != nil {
			return rerr
		}
		_, rerr = fmt.Fprintln(stdout)
		return rerr
	}

	if name == "all" {
		err = faultmem.RunAllExperiments(ctx, r, emit)
	} else {
		var res *faultmem.ExperimentResult
		if res, err = faultmem.RunExperiment(ctx, name, r); err == nil {
			err = emit(res)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "faultmem %s: cancelled: %v\n", name, err)
		} else {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", name, err)
		}
		return 1
	}
	if *jsonOut {
		var out []byte
		var merr error
		if name == "all" {
			out, merr = json.MarshalIndent(results, "", "  ")
		} else {
			out, merr = results[0].JSON()
		}
		if merr != nil {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", name, merr)
			return 1
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", out); err != nil {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", name, err)
			return 1
		}
	}
	return 0
}
