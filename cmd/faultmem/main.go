// Command faultmem regenerates the paper's evaluation through the public
// experiment registry:
//
//	faultmem list                   # registered experiments
//	faultmem run fig5               # one experiment, text tables
//	faultmem run all -quick -json   # everything, reduced budgets, JSON
//	faultmem fig7                   # sugar for `faultmem run fig7`
//
// Every experiment takes the same flags — -seed, -workers, -quick, -json,
// -csv, -hist/-bins, -params (a JSON override of the experiment's default
// parameter struct), -progress, and -timeout — and every run is
// deterministic: results are bit-identical for any -workers value.
// Ctrl-C (or -timeout) cancels the campaign mid-flight through the
// engine's context plumbing; a second Ctrl-C hard-exits immediately.
//
// Campaigns also run distributed, with identical output:
//
//	faultmem worker -connect host:7715            # on each compute host
//	faultmem coordinate -listen :7715 fig7 -json  # where results land
//
// The coordinator fans an experiment's Monte-Carlo shards out to every
// connected worker, survives worker churn by reassigning expired shards,
// and finishes locally if the pool drains — the emitted Result is
// bit-identical to a single-host `faultmem run` at any worker count.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"faultmem"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	go watchInterrupts(sig, cancel, os.Exit)
	os.Exit(execute(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// watchInterrupts implements the two-stage Ctrl-C contract: the first
// interrupt cancels the campaign context so the run winds down through
// the engine's context plumbing (and the process exits through the normal
// error path); a second interrupt means "now" and hard-exits with the
// conventional 128+SIGINT code.
func watchInterrupts(sig <-chan os.Signal, cancel context.CancelFunc, exit func(int)) {
	<-sig
	cancel()
	<-sig
	exit(130)
}

// execute is the testable entry point: it returns the process exit code
// instead of calling os.Exit.
func execute(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	case "list":
		return listCmd(rest, stdout, stderr)
	case "run":
		if len(rest) == 0 || strings.HasPrefix(rest[0], "-") {
			fmt.Fprintf(stderr, "faultmem run: missing experiment name\n\n")
			printExperiments(stderr)
			return 2
		}
		return runExperiment(ctx, rest[0], rest[1:], stdout, stderr)
	case "coordinate":
		return coordinate(ctx, rest, stdout, stderr)
	case "worker":
		return workerCmd(ctx, rest, stderr)
	case "serve":
		return serveCmd(ctx, rest, stderr)
	case "submit":
		return submitCmd(ctx, rest, stdout, stderr)
	case "status":
		return statusCmd(ctx, rest, stdout, stderr)
	case "cancel":
		return cancelCmd(ctx, rest, stdout, stderr)
	default:
		if strings.HasPrefix(cmd, "-") {
			fmt.Fprintf(stderr, "faultmem: unknown flag %q before a command\n\n", cmd)
			usage(stderr)
			return 2
		}
		// Sugar: `faultmem fig5` runs the registered experiment directly.
		return runExperiment(ctx, cmd, rest, stdout, stderr)
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `faultmem - regenerate the DAC'15 bit-shuffling paper's evaluation

usage: faultmem <command> [flags]

commands:
  run <name|all>  run one registered experiment (or all, in paper order)
  coordinate      run an experiment on a pool of remote workers
  worker          compute shards for a remote coordinator or campaign server
  serve           run the long-lived multi-client campaign server
  submit          submit a campaign to a server and stream its result
  status          show one server job (or list all with no job ID)
  cancel          cancel one running server job
  list            list the experiment registry (-json for machine-readable)
  <name>          shorthand for 'run <name>'

run flags:
  -json           emit the machine-readable Result JSON
  -csv            emit CSV tables instead of aligned text
  -seed N         override the experiment's base seed
  -workers N      Monte-Carlo worker goroutines (0 = all cores; results
                  are bit-identical for any value)
  -quick          reduced smoke budgets
  -hist MODE      CDF accumulator: auto|exact|hist
  -bins N         log-histogram bin count (0 = default)
  -params JSON    override the experiment's default params (JSON object
                  merged over the defaults; not valid with 'all')
  -progress       report shard completions on stderr
  -timeout D      cancel the campaign after duration D (e.g. 90s)

coordinate flags (before the experiment name; run flags after it):
  -listen ADDR    TCP address workers dial (default 127.0.0.1:7715)
  -min-workers N  workers to await before starting (default 1)
  -wait D         how long to await them before starting anyway (default 1m)
  -lease D        shard lease before reassignment (0 = default)
  -session-ttl D  resume window for disconnected workers (0 = default)
  -auth-token S   shared secret required from workers (default $FAULTMEM_AUTH_TOKEN)
  -verbose        log worker churn and shard reassignment on stderr

worker flags:
  -connect ADDR   coordinator address to dial (default 127.0.0.1:7715)
  -auth-token S   shared secret for the pool (default $FAULTMEM_AUTH_TOKEN)
  -heartbeat D    liveness heartbeat cadence (0 = default)
  -workers N      concurrent shard computations (0 = all cores)
  -verbose        log transport events on stderr

serve flags:
  -listen ADDR        TCP address for workers and clients (default 127.0.0.1:7715)
  -auth-token S       shared secret required from every connection
  -worker-slots N     scheduler tickets per connected worker (default 4)
  -local-workers N    local shard capacity floor (0 = all cores)
  -client-inflight N  per-client concurrent shard cap (0 = uncapped)
  -snapshot-every D   partial-result push period (default 1s)
  -client-ttl D       client session resume window (default 30s)
  -drain-timeout D    drain wait bound on SIGTERM/Ctrl-C (default 1m)
  -verbose            log job lifecycle and churn on stderr

submit flags (the run flags above, plus):
  -connect ADDR   campaign server to dial (default 127.0.0.1:7715)
  -auth-token S   shared secret for the server (default $FAULTMEM_AUTH_TOKEN)
  -token S        resume a previous session (jobs re-attach, finals redeliver)
  -label S        free-form annotation echoed in status listings
  -priority N     fair-share weight (higher = more concurrent shards)
  -detach         print the job ID and exit instead of waiting

status/cancel flags:
  -connect, -auth-token, -token as for submit; -json for JSON output
  'status' with no job ID lists every job the server knows

`)
	printExperiments(w)
}

func printExperiments(w io.Writer) {
	fmt.Fprintln(w, "experiments:")
	for _, name := range faultmem.Experiments() {
		desc, _ := faultmem.DescribeExperiment(name)
		fmt.Fprintf(w, "  %-18s %s\n", name, desc)
	}
}

// campaignExecutor abstracts where a campaign's shards compute: the local
// engine (runExperiment) or a coordinator's worker pool (coordinate).
// *faultmem.SweepCoordinator satisfies it directly.
type campaignExecutor interface {
	Run(ctx context.Context, name string, r *faultmem.Runner) (*faultmem.ExperimentResult, error)
	RunAll(ctx context.Context, r *faultmem.Runner, emit func(*faultmem.ExperimentResult) error) error
}

// localExecutor computes everything in-process.
type localExecutor struct{}

func (localExecutor) Run(ctx context.Context, name string, r *faultmem.Runner) (*faultmem.ExperimentResult, error) {
	return faultmem.RunExperiment(ctx, name, r)
}

func (localExecutor) RunAll(ctx context.Context, r *faultmem.Runner, emit func(*faultmem.ExperimentResult) error) error {
	return faultmem.RunAllExperiments(ctx, r, emit)
}

func runExperiment(ctx context.Context, name string, args []string, stdout, stderr io.Writer) int {
	return runCampaign(ctx, localExecutor{}, "", name, args, stdout, stderr)
}

// runCampaign parses the shared run flags, executes name (or "all") on
// exec, and renders the results. cmdName prefixes error messages when the
// campaign was launched by a subcommand other than run.
func runCampaign(ctx context.Context, exec campaignExecutor, cmdName, name string, args []string, stdout, stderr io.Writer) int {
	label := name
	if cmdName != "" {
		label = cmdName + " " + name
	}
	fs := flag.NewFlagSet("faultmem "+label, flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the Result JSON")
	csvOut := fs.Bool("csv", false, "emit CSV tables")
	seed := fs.Int64("seed", 0, "override the experiment's base seed")
	workers := fs.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores)")
	quick := fs.Bool("quick", false, "reduced smoke budgets")
	hist := fs.String("hist", "auto", "CDF accumulator: auto|exact|hist")
	bins := fs.Int("bins", 0, "log-histogram bin count (0 = default)")
	paramsJSON := fs.String("params", "", "JSON override of the experiment's default params")
	progress := fs.Bool("progress", false, "report shard completions on stderr")
	timeout := fs.Duration("timeout", 0, "cancel the campaign after this duration (0 = none)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if name != "all" {
		if _, ok := faultmem.LookupExperiment(name); !ok {
			fmt.Fprintf(stderr, "faultmem: unknown experiment %q\n\n", name)
			printExperiments(stderr)
			return 2
		}
	}

	mode, err := faultmem.ParseAccumMode(*hist)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem: %v\n", err)
		return 2
	}
	r := &faultmem.Runner{
		Workers: *workers,
		Accum:   mode,
		Bins:    *bins,
		Quick:   *quick,
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			r.Seed = seed
		}
	})
	if *paramsJSON != "" {
		if name == "all" {
			fmt.Fprintln(stderr, "faultmem: -params cannot apply to 'run all'")
			return 2
		}
		r.Params = json.RawMessage(*paramsJSON)
	}
	if *progress {
		r.Progress = func(p faultmem.ExperimentProgress) {
			stage := p.Stage
			if stage != "" {
				stage = " " + stage
			}
			fmt.Fprintf(stderr, "\r%s%s %d/%d", p.Experiment, stage, p.Done, p.Total)
			if p.Done == p.Total {
				fmt.Fprintln(stderr)
			}
		}
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var results []*faultmem.ExperimentResult
	emit := func(res *faultmem.ExperimentResult) error {
		if *jsonOut {
			results = append(results, res)
			return nil
		}
		if name == "all" {
			fmt.Fprintf(stdout, "############ %s ############\n\n", res.Experiment)
		}
		var rerr error
		if *csvOut {
			rerr = res.RenderCSV(stdout, true)
		} else {
			rerr = res.Render(stdout)
		}
		if rerr != nil {
			return rerr
		}
		_, rerr = fmt.Fprintln(stdout)
		return rerr
	}

	if name == "all" {
		err = exec.RunAll(ctx, r, emit)
	} else {
		var res *faultmem.ExperimentResult
		if res, err = exec.Run(ctx, name, r); err == nil {
			err = emit(res)
		}
	}

	// `run all` keeps going past failing experiments and reports the
	// collected failures at the end; everything that succeeded still
	// renders, and only real failures make the exit code non-zero.
	var allErr *faultmem.RunAllError
	partial := errors.As(err, &allErr)
	if err != nil && !partial {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "faultmem %s: cancelled: %v\n", label, err)
		} else {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", label, err)
		}
		return 1
	}
	if *jsonOut {
		var out []byte
		var merr error
		if name == "all" {
			out, merr = json.MarshalIndent(results, "", "  ")
		} else {
			out, merr = results[0].JSON()
		}
		if merr != nil {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", label, merr)
			return 1
		}
		if _, err := fmt.Fprintf(stdout, "%s\n", out); err != nil {
			fmt.Fprintf(stderr, "faultmem %s: %v\n", label, err)
			return 1
		}
	}
	if partial {
		fmt.Fprintf(stderr, "faultmem %s: %d of %d experiments failed:\n",
			label, len(allErr.Failures), len(faultmem.Experiments()))
		for _, f := range allErr.Failures {
			fmt.Fprintf(stderr, "  %s: %v\n", f.Name, f.Err)
		}
		return 1
	}
	return 0
}

// coordinate runs an experiment with its engine shards fanned out to a
// pool of `faultmem worker` processes. Coordinator flags come before the
// experiment name, run flags after it:
//
//	faultmem coordinate -listen :7715 -min-workers 2 fig5 -quick -json
func coordinate(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem coordinate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7715", "TCP address to accept workers on")
	minWorkers := fs.Int("min-workers", 1, "workers to await before starting (0 = start immediately)")
	wait := fs.Duration("wait", time.Minute, "how long to await -min-workers before starting anyway")
	lease := fs.Duration("lease", 0, "shard lease before reassignment (0 = default)")
	sessionTTL := fs.Duration("session-ttl", 0, "resume window for disconnected workers (0 = default)")
	authToken := fs.String("auth-token", os.Getenv(authTokenEnv),
		"shared secret required from workers (default $"+authTokenEnv+")")
	verbose := fs.Bool("verbose", false, "log worker churn and shard reassignment on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fmt.Fprintf(stderr, "faultmem coordinate: missing experiment name\n\n")
		printExperiments(stderr)
		return 2
	}
	name, runArgs := rest[0], rest[1:]
	// Reject unknown names before binding the port and awaiting workers —
	// a typo should not sit through the -wait window first.
	if name != "all" {
		if _, ok := faultmem.LookupExperiment(name); !ok {
			fmt.Fprintf(stderr, "faultmem: unknown experiment %q\n\n", name)
			printExperiments(stderr)
			return 2
		}
	}

	cfg := faultmem.SweepConfig{Lease: *lease, SessionTTL: *sessionTTL, AuthToken: *authToken}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "faultmem coordinate: "+format+"\n", args...)
		}
	}
	c, err := faultmem.ListenSweep(*listen, cfg)
	if err != nil {
		fmt.Fprintf(stderr, "faultmem coordinate: %v\n", err)
		return 1
	}
	defer c.Close()
	fmt.Fprintf(stderr, "faultmem coordinate: listening on %s\n", c.Addr())

	if *minWorkers > 0 {
		wctx := ctx
		if *wait > 0 {
			var cancel context.CancelFunc
			wctx, cancel = context.WithTimeout(ctx, *wait)
			defer cancel()
		}
		if werr := c.AwaitWorkers(wctx, *minWorkers); werr != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(stderr, "faultmem coordinate: cancelled: %v\n", ctx.Err())
				return 1
			}
			// Degrade instead of dying: a short pool still computes, and
			// missing capacity falls back to local shards.
			fmt.Fprintf(stderr, "faultmem coordinate: pool short after %v (want %d workers); starting anyway\n",
				*wait, *minWorkers)
		}
	}

	code := runCampaign(ctx, c, "coordinate", name, runArgs, stdout, stderr)
	st := c.Stats()
	fmt.Fprintf(stderr,
		"faultmem coordinate: %d shards remote, %d local, %d reassigned, %d duplicate results, %d frames rejected, %d sessions resumed\n",
		st.RemoteShards, st.LocalShards, st.Reassigned, st.DuplicateResults, st.FramesRejected, st.SessionsResumed)
	return code
}

// workerCmd joins a coordinator's pool and computes shards until the
// coordinator finishes the sweep or the context dies.
func workerCmd(ctx context.Context, args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmem worker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	connect := fs.String("connect", "127.0.0.1:7715", "coordinator address to dial")
	authToken := fs.String("auth-token", os.Getenv(authTokenEnv),
		"shared secret for the pool (default $"+authTokenEnv+")")
	heartbeat := fs.Duration("heartbeat", 0, "liveness heartbeat cadence (0 = default)")
	workers := fs.Int("workers", 0, "concurrent shard computations (0 = all cores)")
	verbose := fs.Bool("verbose", false, "log transport events on stderr")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "faultmem worker: unexpected argument %q\n", fs.Arg(0))
		return 2
	}

	cfg := faultmem.SweepWorkerConfig{Heartbeat: *heartbeat, LocalWorkers: *workers, AuthToken: *authToken}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stderr, "faultmem worker: "+format+"\n", args...)
		}
	}
	if err := faultmem.RunSweepWorker(ctx, *connect, cfg); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(stderr, "faultmem worker: cancelled: %v\n", err)
		} else {
			fmt.Fprintf(stderr, "faultmem worker: %v\n", err)
		}
		return 1
	}
	fmt.Fprintln(stderr, "faultmem worker: sweep complete")
	return 0
}
