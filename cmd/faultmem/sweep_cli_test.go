package main

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"faultmem"
)

// freePort reserves a loopback address for a coordinate/worker pair. The
// listener is closed before use, so there is a tiny reuse race — fine for
// a test that owns the port for milliseconds.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestCoordinateMatchesLocalRun drives the full CLI surface end to end:
// two `faultmem worker` invocations and one `faultmem coordinate`, all
// through execute(), and requires the distributed JSON on stdout to be
// byte-identical to a plain `faultmem run` of the same campaign.
func TestCoordinateMatchesLocalRun(t *testing.T) {
	var golden, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"run", "fig5", "-quick", "-json", "-seed", "7"}, &golden, &errOut); code != 0 {
		t.Fatalf("golden run exited %d: %s", code, errOut.String())
	}

	addr := freePort(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	var wg sync.WaitGroup
	workerCodes := make([]int, 2)
	workerErrs := make([]bytes.Buffer, 2)
	for i := range workerCodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var discard bytes.Buffer
			workerCodes[i] = execute(ctx, []string{"worker", "-connect", addr}, &discard, &workerErrs[i])
		}(i)
	}

	var out, coordErr bytes.Buffer
	code := execute(ctx, []string{
		"coordinate", "-listen", addr, "-min-workers", "2", "-wait", "1m",
		"fig5", "-quick", "-json", "-seed", "7",
	}, &out, &coordErr)
	if code != 0 {
		t.Fatalf("coordinate exited %d: %s", code, coordErr.String())
	}
	wg.Wait()

	if out.String() != golden.String() {
		t.Errorf("distributed CLI output diverged from local run\nlocal:\n%s\ndistributed:\n%s",
			golden.String(), out.String())
	}
	for i, wc := range workerCodes {
		if wc != 0 {
			t.Errorf("worker %d exited %d: %s", i, wc, workerErrs[i].String())
		}
	}
	if !strings.Contains(coordErr.String(), "shards remote") {
		t.Errorf("coordinate stderr missing stats summary:\n%s", coordErr.String())
	}
}

func TestCoordinateRejectsBadInvocations(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"coordinate", "-listen", "127.0.0.1:0"}, &out, &errOut); code != 2 {
		t.Fatalf("coordinate without an experiment exited %d, want 2", code)
	}
	errOut.Reset()
	if code := execute(context.Background(), []string{"coordinate", "-listen", "127.0.0.1:0", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("coordinate with unknown experiment exited %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr does not flag the unknown experiment: %s", errOut.String())
	}
	errOut.Reset()
	if code := execute(context.Background(), []string{"worker", "stray"}, &out, &errOut); code != 2 {
		t.Fatalf("worker with a stray argument exited %d, want 2", code)
	}
}

// failingExecutor simulates a `run all` sweep where some experiments
// failed: the survivors stream to emit, and the failures come back
// aggregated, exactly as faultmem.RunAllExperiments reports them.
type failingExecutor struct{}

func (failingExecutor) Run(ctx context.Context, name string, r *faultmem.Runner) (*faultmem.ExperimentResult, error) {
	return faultmem.RunExperiment(ctx, name, r)
}

func (failingExecutor) RunAll(ctx context.Context, r *faultmem.Runner, emit func(*faultmem.ExperimentResult) error) error {
	res, err := faultmem.RunExperiment(ctx, "fig4", r)
	if err != nil {
		return err
	}
	if err := emit(res); err != nil {
		return err
	}
	return &faultmem.RunAllError{Failures: []*faultmem.ExperimentError{
		{Name: "fig5", Err: errors.New("synthetic shard failure")},
		{Name: "fig7", Err: errors.New("synthetic OOM")},
	}}
}

// TestRunAllReportsFailuresAndStillRenders locks in the resilient `run
// all` CLI contract: completed experiments still render (including the
// JSON array), every failure is listed on stderr with its experiment
// name, and the exit code is non-zero only because failures occurred.
func TestRunAllReportsFailuresAndStillRenders(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runCampaign(context.Background(), failingExecutor{}, "", "all", []string{"-json", "-quick"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("partial `run all` exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), `"experiment": "fig4"`) {
		t.Errorf("surviving result missing from JSON output:\n%s", out.String())
	}
	for _, want := range []string{"2 of", "fig5: synthetic shard failure", "fig7: synthetic OOM"} {
		if !strings.Contains(errOut.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, errOut.String())
		}
	}

	// Text mode takes the same path.
	out.Reset()
	errOut.Reset()
	if code := runCampaign(context.Background(), failingExecutor{}, "", "all", []string{"-quick"}, &out, &errOut); code != 1 {
		t.Fatalf("text-mode partial `run all` exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "############ fig4 ############") {
		t.Errorf("surviving result missing from text output:\n%s", out.String())
	}
}

// TestWatchInterrupts pins the two-stage Ctrl-C contract: the first
// interrupt cancels the campaign context (graceful wind-down through the
// normal exit path), the second hard-exits with 128+SIGINT = 130.
func TestWatchInterrupts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 2)
	exited := make(chan int, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		watchInterrupts(sig, cancel, func(code int) { exited <- code })
	}()

	sig <- os.Interrupt
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("first interrupt did not cancel the context")
	}
	select {
	case code := <-exited:
		t.Fatalf("first interrupt already exited with %d", code)
	default:
	}

	sig <- os.Interrupt
	select {
	case code := <-exited:
		if code != 130 {
			t.Fatalf("second interrupt exited %d, want 130", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second interrupt did not exit")
	}
	<-done
}

// TestCoordinateCancelledWhileWaiting: a dead parent context during the
// worker wait must fail fast instead of starting a local-only campaign.
func TestCoordinateCancelledWhileWaiting(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code := execute(ctx, []string{"coordinate", "-listen", "127.0.0.1:0", "-min-workers", "1", "fig4"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("cancelled coordinate exited %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "cancelled") {
		t.Fatalf("stderr does not mention cancellation: %s", errOut.String())
	}
}

// TestCoordinateShortPoolDegrades: when no worker ever shows up inside
// -wait, the coordinator warns and runs the campaign anyway (all shards
// local), still exiting 0 with correct output.
func TestCoordinateShortPoolDegrades(t *testing.T) {
	var golden, errOut bytes.Buffer
	if code := execute(context.Background(), []string{"run", "fig4", "-json", "-seed", "3"}, &golden, &errOut); code != 0 {
		t.Fatalf("golden run exited %d: %s", code, errOut.String())
	}

	var out, coordErr bytes.Buffer
	code := execute(context.Background(), []string{
		"coordinate", "-listen", "127.0.0.1:0", "-min-workers", "1", "-wait", "50ms",
		"fig4", "-json", "-seed", "3",
	}, &out, &coordErr)
	if code != 0 {
		t.Fatalf("workerless coordinate exited %d: %s", code, coordErr.String())
	}
	if !strings.Contains(coordErr.String(), "starting anyway") {
		t.Fatalf("stderr missing the degradation warning:\n%s", coordErr.String())
	}
	if out.String() != golden.String() {
		t.Errorf("workerless coordinate output diverged from local run\nlocal:\n%s\ndistributed:\n%s",
			golden.String(), out.String())
	}
}
