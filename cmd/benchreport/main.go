// Command benchreport converts `go test -bench` output on stdin into a
// machine-readable JSON report, so CI can record the performance
// trajectory of the hot kernels (the Fig. 7 trial microbenches) as an
// artifact instead of a scrollback log.
//
//	go test -run '^$' -bench Fig7Trial -benchtime 1x -benchmem ./internal/exp/ |
//	    go run ./cmd/benchreport -out BENCH_fig7.json
//
// Each benchmark line becomes one record with the benchmark name and
// the standard metrics (ns/op, plus B/op and allocs/op when -benchmem
// is on). Unknown units are carried through verbatim under their unit
// name, so custom b.ReportMetric series survive too. -filter keeps only
// records whose name matches a regexp, so one `go test -bench` run can
// feed several reports.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Record is one benchmark result.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the file layout: the parsed records plus the context lines
// (goos/goarch/pkg/cpu) go test prints before them.
type Report struct {
	Context map[string]string `json:"context,omitempty"`
	Results []Record          `json:"results"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	filter := flag.String("filter", "", "keep only records whose name matches this regexp")
	flag.Parse()

	report, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	if *filter != "" {
		re, err := regexp.Compile(*filter)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: bad -filter: %v\n", err)
			os.Exit(1)
		}
		kept := report.Results[:0]
		for _, rec := range report.Results {
			if re.MatchString(rec.Name) {
				kept = append(kept, rec)
			}
		}
		report.Results = kept
	}
	if len(report.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	report := &Report{Context: map[string]string{}}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, ctx := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, ctx+": "); ok {
				report.Context[ctx] = v
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if ok {
			report.Results = append(report.Results, rec)
		}
	}
	return report, sc.Err()
}

// parseBenchLine parses one result line of the standard form
//
//	BenchmarkName-8   5   1234 ns/op   56 B/op   7 allocs/op
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Record{}, false
	}
	rec := Record{Name: strings.TrimSuffix(fields[0], cpuSuffix(fields[0])), Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Record{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			rec.NsPerOp = val
		case "B/op":
			v := val
			rec.BytesPerOp = &v
		case "allocs/op":
			v := val
			rec.AllocsPerOp = &v
		default:
			if rec.Extra == nil {
				rec.Extra = map[string]float64{}
			}
			rec.Extra[unit] = val
		}
	}
	return rec, true
}

// cpuSuffix returns the trailing "-N" GOMAXPROCS marker of a benchmark
// name, or "" when absent, so records are stable across machines.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
