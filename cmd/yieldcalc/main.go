// Command yieldcalc answers the §4 yield questions: given a memory size,
// an operating point (Pcell or VDD), and an MSE quality target, what
// fraction of manufactured dies qualifies under each protection scheme?
// It also sweeps VDD to show how far each scheme lets the supply scale at
// a fixed yield requirement — the paper's motivating trade-off.
//
//	yieldcalc -pcell 5e-6 -target 1e6
//	yieldcalc -sweep -target 1e6 -minyield 0.999
//	yieldcalc -schemes none,nfm2,ecc -pcell 1e-5
//
// Schemes are named by their canonical IDs (none, nfm1..nfm5, pecc, ecc —
// the same vocabulary as the faultmem experiment registry). The sweep
// evaluates all operating points concurrently on the Monte-Carlo engine
// (one pass per point, deterministic output order); -hist selects the CDF
// accumulator (auto switches to the O(1)-memory log histogram at large
// budgets, so -trun 1e7 runs flat in memory). Ctrl-C cancels a running
// campaign mid-flight.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"faultmem/internal/mc"
	"faultmem/internal/sram"
	"faultmem/internal/yield"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if err := run(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "yieldcalc: %v\n", err)
		os.Exit(1)
	}
}

// parseSchemes maps a comma-separated scheme list to typed IDs.
func parseSchemes(list string) ([]yield.SchemeID, error) {
	if list == "all" {
		return yield.AllSchemeIDs(), nil
	}
	var ids []yield.SchemeID
	for _, name := range strings.Split(list, ",") {
		id, err := yield.ParseScheme(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func run(ctx context.Context) error {
	rows := flag.Int("rows", 4096, "memory depth in 32-bit words (4096 = 16KB)")
	pcell := flag.Float64("pcell", 5e-6, "bit-cell failure probability (ignored with -sweep)")
	target := flag.Float64("target", 1e6, "MSE quality target (die qualifies if MSE < target)")
	trun := flag.Float64("trun", 0, "Monte-Carlo budget scale (0 = auto: 2e5 single point, 1e6 sweep)")
	seed := flag.Int64("seed", 1, "random seed")
	sweep := flag.Bool("sweep", false, "sweep VDD instead of a single Pcell point")
	minYield := flag.Float64("minyield", 0.999, "yield requirement for the -sweep minimum-VDD report")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores; results identical for any value)")
	hist := flag.String("hist", "auto", "CDF accumulator: auto|exact|hist (hist = O(1)-memory log histogram)")
	bins := flag.Int("bins", 0, "log-histogram bin count (0 = default)")
	schemeList := flag.String("schemes", "all", "comma-separated scheme IDs (none|nfm1..nfm5|pecc|ecc) or 'all'")
	progress := flag.Bool("progress", false, "report sweep progress on stderr")
	flag.Parse()

	mode, err := yield.ParseAccumMode(*hist)
	if err != nil {
		return err
	}
	ids, err := parseSchemes(*schemeList)
	if err != nil {
		return err
	}

	// One engine pass per operating point: every scheme is scored on the
	// same fault-map samples (common random numbers), so the per-scheme
	// yield columns are directly comparable.
	ys := make([]yield.Scheme, len(ids))
	for i, id := range ids {
		ys[i] = id.Scheme()
	}
	params := func(trun float64) yield.CDFParams {
		return yield.CDFParams{
			Rows: *rows, Width: 32, Pcell: *pcell,
			Trun: trun, MaxPerCount: 10000, Seed: *seed, Workers: *workers,
			Accum: mode, Bins: *bins,
		}
	}
	env := mc.Env{Ctx: ctx}
	if *progress {
		env.OnShard = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if !*sweep {
		budget := *trun
		if budget == 0 {
			budget = 2e5
		}
		fmt.Printf("memory: %d x 32 (%d cells), Pcell=%.3e, target MSE < %.3e\n\n",
			*rows, *rows*32, *pcell, *target)
		results, err := yield.MSECDFAllEnv(env, params(budget), ys)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s  %-14s  %-12s\n", "scheme", "quality yield", "trad. yield")
		trad := results[0].PZeroFailures // zero-failure criterion
		for i, r := range results {
			fmt.Printf("%-16s  %-14.6f  %-12.6f\n", ids[i].Display(), r.YieldAtMSE(*target), trad)
		}
		fmt.Printf("\n(traditional zero-failure yield rejects every die with any fault, Section 2)\n")
		return nil
	}

	budget := *trun
	if budget == 0 {
		budget = 1e6
	}
	model := sram.Default28nm()
	var vdds, pcells []float64
	for v := 0.90; v >= 0.60-1e-9; v -= 0.02 {
		vdds = append(vdds, v)
		pcells = append(pcells, model.Pcell(v))
	}
	// All operating points run concurrently on the engine: one
	// MSECDFAll pass per point, reduced to its per-scheme yield column
	// as it completes (the full accumulators are not retained), merged
	// in point order — the table is identical to a serial sweep at the
	// same seed. Cancellation propagates into every in-flight point.
	points, err := yield.MSECDFSweepMapEnv(env, params(budget), pcells, ys,
		func(_ int, rs []yield.CDFResult) []float64 {
			col := make([]float64, len(rs))
			for i, r := range rs {
				col[i] = r.YieldAtMSE(*target)
			}
			return col
		})
	if err != nil {
		return err
	}

	fmt.Printf("VDD sweep: quality yield at MSE < %.1e for a %d-word memory\n\n", *target, *rows)
	fmt.Printf("%-6s %-10s", "VDD", "Pcell")
	for _, id := range ids {
		fmt.Printf(" %-14s", id.Display())
	}
	fmt.Println()
	minVDD := make(map[yield.SchemeID]float64)
	for vi, v := range vdds {
		fmt.Printf("%-6.2f %-10.2e", v, pcells[vi])
		for i, y := range points[vi] {
			fmt.Printf(" %-14.6f", y)
			if y >= *minYield {
				minVDD[ids[i]] = v // keep lowest passing VDD (loop descends)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nminimum VDD sustaining yield >= %.4f at MSE < %.1e:\n", *minYield, *target)
	for _, id := range ids {
		if v, ok := minVDD[id]; ok {
			fmt.Printf("  %-16s %.2f V\n", id.Display(), v)
		} else {
			fmt.Printf("  %-16s not reachable in [0.60, 0.90] V\n", id.Display())
		}
	}
	return nil
}
