// Command yieldcalc answers the §4 yield questions: given a memory size,
// an operating point (Pcell or VDD), and an MSE quality target, what
// fraction of manufactured dies qualifies under each protection scheme?
// It also sweeps VDD to show how far each scheme lets the supply scale at
// a fixed yield requirement — the paper's motivating trade-off.
//
//	yieldcalc -pcell 5e-6 -target 1e6
//	yieldcalc -sweep -target 1e6 -minyield 0.999
//
// The sweep evaluates all operating points concurrently on the
// Monte-Carlo engine (one pass per point, deterministic output order);
// -hist selects the CDF accumulator (auto switches to the O(1)-memory
// log histogram at large budgets, so -trun 1e7 runs flat in memory).
package main

import (
	"flag"
	"fmt"
	"os"

	"faultmem/internal/exp"
	"faultmem/internal/sram"
	"faultmem/internal/yield"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "yieldcalc: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	rows := flag.Int("rows", 4096, "memory depth in 32-bit words (4096 = 16KB)")
	pcell := flag.Float64("pcell", 5e-6, "bit-cell failure probability (ignored with -sweep)")
	target := flag.Float64("target", 1e6, "MSE quality target (die qualifies if MSE < target)")
	trun := flag.Float64("trun", 0, "Monte-Carlo budget scale (0 = auto: 2e5 single point, 1e6 sweep)")
	seed := flag.Int64("seed", 1, "random seed")
	sweep := flag.Bool("sweep", false, "sweep VDD instead of a single Pcell point")
	minYield := flag.Float64("minyield", 0.999, "yield requirement for the -sweep minimum-VDD report")
	workers := flag.Int("workers", 0, "Monte-Carlo worker goroutines (0 = all cores; results identical for any value)")
	hist := flag.String("hist", "auto", "CDF accumulator: auto|exact|hist (hist = O(1)-memory log histogram)")
	bins := flag.Int("bins", 0, "log-histogram bin count (0 = default)")
	flag.Parse()

	mode, err := yield.ParseAccumMode(*hist)
	if err != nil {
		return err
	}

	schemes := []exp.Protection{exp.ProtNone, exp.ProtShuffle1, exp.ProtShuffle2,
		exp.ProtShuffle3, exp.ProtShuffle4, exp.ProtShuffle5, exp.ProtPECC, exp.ProtECC}

	// One engine pass per operating point: every scheme is scored on the
	// same fault-map samples (common random numbers), so the per-scheme
	// yield columns are directly comparable.
	ys := make([]yield.Scheme, len(schemes))
	for i, s := range schemes {
		ys[i] = s.YieldScheme()
	}
	params := func(trun float64) yield.CDFParams {
		return yield.CDFParams{
			Rows: *rows, Width: 32, Pcell: *pcell,
			Trun: trun, MaxPerCount: 10000, Seed: *seed, Workers: *workers,
			Accum: mode, Bins: *bins,
		}
	}

	if !*sweep {
		budget := *trun
		if budget == 0 {
			budget = 2e5
		}
		fmt.Printf("memory: %d x 32 (%d cells), Pcell=%.3e, target MSE < %.3e\n\n",
			*rows, *rows*32, *pcell, *target)
		results := yield.MSECDFAll(params(budget), ys)
		fmt.Printf("%-16s  %-14s  %-12s\n", "scheme", "quality yield", "trad. yield")
		trad := results[0].PZeroFailures // zero-failure criterion
		for i, r := range results {
			fmt.Printf("%-16s  %-14.6f  %-12.6f\n", schemes[i].String(), r.YieldAtMSE(*target), trad)
		}
		fmt.Printf("\n(traditional zero-failure yield rejects every die with any fault, Section 2)\n")
		return nil
	}

	budget := *trun
	if budget == 0 {
		budget = 1e6
	}
	model := sram.Default28nm()
	var vdds, pcells []float64
	for v := 0.90; v >= 0.60-1e-9; v -= 0.02 {
		vdds = append(vdds, v)
		pcells = append(pcells, model.Pcell(v))
	}
	// All operating points run concurrently on the engine: one
	// MSECDFAll pass per point, reduced to its per-scheme yield column
	// as it completes (the full accumulators are not retained), merged
	// in point order — the table is identical to a serial sweep at the
	// same seed.
	points := yield.MSECDFSweepMap(params(budget), pcells, ys,
		func(_ int, rs []yield.CDFResult) []float64 {
			col := make([]float64, len(rs))
			for i, r := range rs {
				col[i] = r.YieldAtMSE(*target)
			}
			return col
		})

	fmt.Printf("VDD sweep: quality yield at MSE < %.1e for a %d-word memory\n\n", *target, *rows)
	fmt.Printf("%-6s %-10s", "VDD", "Pcell")
	for _, s := range schemes {
		fmt.Printf(" %-14s", s.String())
	}
	fmt.Println()
	minVDD := make(map[exp.Protection]float64)
	for vi, v := range vdds {
		fmt.Printf("%-6.2f %-10.2e", v, pcells[vi])
		for i, y := range points[vi] {
			fmt.Printf(" %-14.6f", y)
			if y >= *minYield {
				minVDD[schemes[i]] = v // keep lowest passing VDD (loop descends)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nminimum VDD sustaining yield >= %.4f at MSE < %.1e:\n", *minYield, *target)
	for _, s := range schemes {
		if v, ok := minVDD[s]; ok {
			fmt.Printf("  %-16s %.2f V\n", s.String(), v)
		} else {
			fmt.Printf("  %-16s not reachable in [0.60, 0.90] V\n", s.String())
		}
	}
	return nil
}
