// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, regenerating the corresponding rows, plus
// microbenchmarks of the core datapaths. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benches print their exhibit once (via b.Logf on the first
// iteration at -v, and always report headline metrics via
// b.ReportMetric); cmd/faultmem prints the full tables.
package faultmem_test

import (
	"io"
	"testing"

	"faultmem"
	"faultmem/internal/exp"
	"faultmem/internal/yield"
)

// BenchmarkFig2CellFailure regenerates the Pcell-vs-VDD sweep of Fig. 2,
// including the spherical importance-sampling estimate at each point.
func BenchmarkFig2CellFailure(b *testing.B) {
	p := exp.DefaultFig2Params()
	p.ISDirections = 8000
	var rows []exp.Fig2Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig2(p)
	}
	b.ReportMetric(rows[len(rows)-1].PcellAnalytic, "Pcell@0.60V")
	b.ReportMetric(rows[0].PcellAnalytic, "Pcell@1.00V")
	if err := exp.Fig2Table(rows).Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkFig4ErrorMagnitude regenerates the error-magnitude profile of
// Fig. 4 (all 32 fault positions x 5 segment configurations).
func BenchmarkFig4ErrorMagnitude(b *testing.B) {
	var rows []exp.Fig4Row
	for i := 0; i < b.N; i++ {
		rows = exp.Fig4()
	}
	b.ReportMetric(float64(rows[31].NoCorrection), "log2err-msb-none")
	b.ReportMetric(float64(rows[31].Shuffled[4]), "log2err-msb-nfm5")
}

// BenchmarkFig5MSECDF regenerates the MSE-CDF comparison of Fig. 5 for
// all seven arms (16 KB memory, Pcell = 5e-6) and reports the headline
// MSE-reduction factor of nFM=1 over no protection at 90% yield.
//
// Since the internal/mc engine rewrite this is one parallel
// common-random-numbers pass over all arms with an allocation-free
// per-sample loop (RowSampler + Scheme.RowMSE): ~25x faster than the
// seed implementation at the same budget on a single core, with the
// parallel speedup on top of that.
func BenchmarkFig5MSECDF(b *testing.B) {
	p := exp.DefaultFig5Params()
	p.CDF.Trun = 2e4 // bench-scale budget; cmd/faultmem fig5 uses 1e6
	var res exp.Fig5Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig5(p)
	}
	var none, s1 yield.CDFResult
	for i, a := range res.Arms {
		switch a {
		case exp.ProtNone:
			none = res.CDFs[i]
		case exp.ProtShuffle1:
			s1 = res.CDFs[i]
		}
	}
	b.ReportMetric(yield.ReductionAtYield(s1, none, 0.9), "mse-reduction-x")
	b.ReportMetric(s1.YieldAtMSE(1e6), "nfm1-yield@1e6")
}

// BenchmarkFig6Overhead regenerates the hardware overhead comparison of
// Fig. 6 and reports the nFM=1 relative overheads (the paper's best
// case: 83% power, 77% delay, 89% area savings).
func BenchmarkFig6Overhead(b *testing.B) {
	var res exp.Fig6Result
	for i := 0; i < b.N; i++ {
		res = exp.Fig6(exp.DefaultFig6Params())
	}
	b.ReportMetric(res.Relative[0].Power, "nfm1-rel-power")
	b.ReportMetric(res.Relative[0].Delay, "nfm1-rel-delay")
	b.ReportMetric(res.Relative[0].Area, "nfm1-rel-area")
}

// benchFig7 runs one Fig. 7 benchmark at bench-scale trial counts and
// reports the mean normalized quality of the unprotected and nFM=2 arms.
func benchFig7(b *testing.B, app exp.App) {
	p := exp.DefaultFig7Params(app)
	p.Trials = 4 // bench-scale; cmd/faultmem fig7 uses 60+
	var res exp.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = exp.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, arm := range res.Arms {
		switch arm.Scheme {
		case exp.ProtNone:
			b.ReportMetric(arm.Mean(), "quality-none")
		case exp.ProtShuffle2:
			b.ReportMetric(arm.Mean(), "quality-nfm2")
		}
	}
}

// BenchmarkFig7Elasticnet regenerates Fig. 7a (wine regression, R²).
func BenchmarkFig7Elasticnet(b *testing.B) { benchFig7(b, exp.AppElasticnet) }

// BenchmarkFig7PCA regenerates Fig. 7b (Madelon, explained variance).
func BenchmarkFig7PCA(b *testing.B) { benchFig7(b, exp.AppPCA) }

// BenchmarkFig7KNN regenerates Fig. 7c (activity recognition, score).
func BenchmarkFig7KNN(b *testing.B) { benchFig7(b, exp.AppKNN) }

// BenchmarkTable1Applications regenerates the Table 1 summary, training
// all three benchmarks on clean data.
func BenchmarkTable1Applications(b *testing.B) {
	var rows []exp.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = exp.Table1(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].CleanMetric, "elasticnet-r2")
	b.ReportMetric(rows[2].CleanMetric, "knn-score")
}

// --- microbenchmarks of the datapaths under the figures ---

// BenchmarkShuffledMemoryAccess measures the functional write+read cost
// of the bit-shuffling datapath on a 16 KB array with a realistic fault
// load.
func BenchmarkShuffledMemoryAccess(b *testing.B) {
	faults := faultmem.GenerateFaultCount(1, faultmem.Rows16KB, 131)
	m, err := faultmem.NewShuffledMemory(5, faultmem.Rows16KB, faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := i & (faultmem.Rows16KB - 1)
		m.Write(a, uint32(i))
		_ = m.Read(a)
	}
}

// BenchmarkECCMemoryAccess measures the same for the H(39,32) arm
// (encode on write, syndrome decode on read).
func BenchmarkECCMemoryAccess(b *testing.B) {
	faults := faultmem.GenerateFaultCount(1, faultmem.Rows16KB, 131)
	m, err := faultmem.NewECCMemory(faultmem.Rows16KB, faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := i & (faultmem.Rows16KB - 1)
		m.Write(a, uint32(i))
		_ = m.Read(a)
	}
}

// BenchmarkBISTMarchCMinus16KB measures a full March C- scan of a 16 KB
// array (the power-on self-test cost).
func BenchmarkBISTMarchCMinus16KB(b *testing.B) {
	arr := faultmem.NewBitArray(faultmem.Rows16KB, 32)
	if err := arr.SetFaults(faultmem.GenerateFaultCount(1, faultmem.Rows16KB, 131)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = faultmem.RunBIST(faultmem.MarchCMinus(), arr)
	}
}

// BenchmarkMSEEq6 measures the Eq. (6) quality-function evaluation on a
// realistic fault map (the inner loop of the Fig. 5 Monte Carlo).
func BenchmarkMSEEq6(b *testing.B) {
	faults := faultmem.GenerateFaultCount(1, faultmem.Rows16KB, 131)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := faultmem.MSE(faults, faultmem.Rows16KB, "nfm3"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetRoundTrip measures pushing the wine training set
// through a faulty shuffled memory (the Fig. 7 inner loop without model
// training).
func BenchmarkDatasetRoundTrip(b *testing.B) {
	ds := faultmem.WineDataset(1)
	train, _ := ds.Split(0.8, 1)
	faults := faultmem.GenerateFaultCount(1, faultmem.Rows16KB, 131)
	m, err := faultmem.NewShuffledMemory(2, faultmem.Rows16KB, faults)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = faultmem.RoundTripDataset(m, train.X, train.Y)
	}
}
